// nsketch_cli — train, query and evaluate NeuroSketches from the command
// line, using CSV data and the parametric-SQL front end (Sec. 4.3).
//
//   nsketch_cli train <data.csv> "<sql template>" <out.sketch> [n_train]
//                     [f64|f32|int8]
//       Trains a sketch for the query function denoted by the template
//       (e.g. "SELECT AVG(duration) FROM t WHERE latitude BETWEEN ?a AND
//       ?b AND longitude BETWEEN ?c AND ?d"). Writes <out.sketch> plus a
//       <out.sketch>.norm sidecar holding the column normalization so
//       query-time parameters can be given in original units. The final
//       argument selects the compiled-plan precision tier (default f64);
//       f32 and int8 are validated against the f64 reference on the
//       training workload and automatically fall back when out of bound
//       (int8 -> f32 -> f64).
//
//   nsketch_cli query <out.sketch> "<sql template>" <data.csv> <p1> <p2> ...
//       Binds the parameters (original units) and answers from the sketch
//       alone; the CSV is read only for its schema header.
//
//   nsketch_cli eval <data.csv> "<sql template>" <out.sketch> [n_test]
//       Compares the sketch against the exact engine on a random workload
//       of the template's parameters.
//
//   nsketch_cli serve <data.csv> "<sql template>" <out.sketch> [n_queries]
//                     [n_clients] [metrics_interval_s] [n_shards]
//       Serves a random workload of the template's parameters through the
//       concurrent micro-batching engine (serve/): n_clients threads
//       submit bursts, answered by the sketch with exact-engine fallback;
//       prints throughput, latency percentiles and the fallback rate.
//       n_shards sets the dispatcher shard count (0 or omitted = one per
//       hardware thread).
//       When the sketch file cannot be loaded, serving runs exact-only —
//       the fallback path end to end. A positive metrics_interval_s dumps
//       the metrics registry (text exposition) every that-many seconds
//       while serving, and once more at the end.
//
//   nsketch_cli stream <data.csv> "<sql template>" <out.sketch> [n_queries]
//                      [n_clients] [append_frac] [refresh_interval_ms]
//                      [max_nmae] [compact_min_rows]
//       Streaming-ingest serving: the last append_frac (default 0.2) of
//       the CSV's rows are held back and appended live while n_clients
//       serve the workload — answers stay exact at all times via the
//       delta composition (sketch answer + exact correction over the
//       unfolded delta rows). A background refresh loop (every
//       refresh_interval_ms, default 100; 0 disables it) probes for
//       drift against the appended data, retrains only the kd-tree
//       leaves whose region drifted past max_nmae (default 0.2), and
//       atomically swaps the new sketch version in; a failure streak
//       demotes the store to exact serving. The base lives in a
//       swappable StreamingTable, and the refresh loop also compacts:
//       once the resident delta crosses compact_min_rows (default 4096;
//       0 disables), safely-folded rows move into the base table and
//       their delta storage is trimmed, so the buffer stays bounded
//       under sustained appends. Prints serve stats, delta / refresh /
//       compaction counters, and the metrics registry document.
//
//   nsketch_cli catalog pack <data.csv> <out.cat> "<sql>" <file.sketch>
//                            ["<sql>" <file.sketch> ...]
//       Packs previously-trained sketches into one paged catalog file
//       (core/WritePagedCatalog): an offset index followed by the
//       serialized images, keyed by each template's query-function
//       identity. The CSV is read only for its schema header.
//
//   nsketch_cli catalog serve <data.csv> <catalog.cat> "<sql template>"
//                             [n_queries] [n_clients] [max_resident_mb]
//       Serves a workload of the template's parameters from a paged
//       catalog: sketches start cold (disk-resident) and fault in through
//       the store's buffer pool under the given resident budget
//       (0 or omitted = unbounded). Prints throughput plus the pool's
//       residency, fault-in and eviction stats.
//
//   nsketch_cli metrics <data.csv> "<sql template>" [n_train] [n_queries]
//       One-shot observability dump: trains a small sketch in-process,
//       serves a workload through the micro-batching engine, then prints
//       one uniform metrics document (Prometheus-style text exposition)
//       covering both build metrics (nsketch_build_*) and serve metrics
//       (nsketch_serve_*), followed by the slowest captured queries.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/neurosketch.h"
#include "data/normalizer.h"
#include "data/streaming_table.h"
#include "data/table.h"
#include "query/parametric.h"
#include "serve/refresh.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/csv.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace neurosketch;

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

Status SaveNormalizer(const Normalizer& norm, const Schema& schema,
                      const std::string& path) {
  std::vector<std::vector<double>> rows;
  for (size_t c = 0; c < norm.num_columns(); ++c) {
    rows.push_back({static_cast<double>(c), norm.lo(c), norm.hi(c)});
  }
  (void)schema;
  return csv::WriteNumeric(path, {"col", "lo", "hi"}, rows);
}

Result<std::vector<std::pair<double, double>>> LoadNormalizer(
    const std::string& path) {
  NS_ASSIGN_OR_RETURN(csv::NumericCsv parsed, csv::ReadNumeric(path));
  std::vector<std::pair<double, double>> out;
  for (const auto& row : parsed.rows) {
    if (row.size() != 3) return Status::InvalidArgument("bad norm sidecar");
    out.emplace_back(row[1], row[2]);
  }
  return out;
}

/// Predicate columns are queried in normalized coordinates, but the
/// measure column keeps original units (so answers read naturally) unless
/// the template also constrains it.
Table PrepareQueryTable(const Table& raw, const Normalizer& norm,
                        const ParametricQuery& pq) {
  Table table = norm.Transform(raw);
  const size_t measure = pq.spec().measure_col;
  for (size_t col : pq.parameter_columns()) {
    if (col == measure) return table;  // measure constrained: stay normalized
  }
  table.column(measure) = raw.column(measure);
  return table;
}

/// Random parameter draws for a template: each attribute's (lo, hi) pair
/// is drawn as a sub-interval of [0,1]; one-sided parameters uniform.
std::vector<QueryInstance> RandomWorkload(const ParametricQuery& pq,
                                          size_t n, Rng* rng) {
  std::vector<QueryInstance> out;
  const size_t num_params = pq.parameter_names().size();
  size_t guard = 0;
  while (out.size() < n && guard++ < n * 50) {
    std::vector<double> params(num_params);
    for (auto& p : params) p = rng->Uniform();
    auto q = pq.Bind(params);
    if (q.ok()) out.push_back(std::move(q).value());
  }
  return out;
}

int CmdTrain(int argc, char** argv) {
  if (argc < 5) return Fail(Status::InvalidArgument("train needs 3+ args"));
  const std::string csv_path = argv[2], sql = argv[3], out_path = argv[4];
  const size_t n_train = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 4000;
  PlanPrecision precision = PlanPrecision::kF64;
  if (argc > 6) {
    const std::string tier = argv[6];
    if (tier == "f32") {
      precision = PlanPrecision::kF32;
    } else if (tier == "int8") {
      precision = PlanPrecision::kInt8;
    } else if (tier != "f64") {
      return Fail(
          Status::InvalidArgument("precision must be f64, f32 or int8"));
    }
  }

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  const Table& raw = table_r.value();
  Normalizer norm = Normalizer::Fit(raw);

  auto pq = ParametricQuery::Parse(sql, raw.schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(raw, norm, pq.value());

  ExactEngine engine(&table);
  Rng rng(4242);
  Timer gen_timer;
  auto queries = RandomWorkload(pq.value(), n_train, &rng);
  auto answers = engine.AnswerBatch(pq.value().spec(), queries, 8);
  std::printf("generated %zu training answers in %.1fs\n", queries.size(),
              gen_timer.ElapsedSeconds());

  NeuroSketchConfig config;
  config.train.epochs = 150;
  config.plan_precision = precision;
  Timer train_timer;
  auto sketch = NeuroSketch::Train(queries, answers, config);
  if (!sketch.ok()) return Fail(sketch.status());
  std::printf("trained %zu partitions in %.1fs (%.1f KB)\n",
              sketch.value().num_partitions(), train_timer.ElapsedSeconds(),
              sketch.value().SizeBytes() / 1024.0);
  if (precision != PlanPrecision::kF64) {
    const NeuroSketch& ns = sketch.value();
    const bool narrow_active = ns.plan_precision() == precision;
    const double div = precision == PlanPrecision::kInt8
                           ? ns.int8_max_divergence()
                           : ns.f32_max_divergence();
    const double bound = precision == PlanPrecision::kInt8
                             ? ns.int8_error_bound()
                             : ns.f32_error_bound();
    std::printf("plan precision: %s (max %s divergence %.3g, bound %.3g)%s\n",
                PlanPrecisionName(ns.plan_precision()),
                PlanPrecisionName(precision), div, bound,
                narrow_active ? ""
                              : " — fell back from the requested tier");
  }
  Status st = sketch.value().Save(out_path);
  if (!st.ok()) return Fail(st);
  st = SaveNormalizer(norm, raw.schema(), out_path + ".norm");
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s and %s.norm\n", out_path.c_str(), out_path.c_str());
  // Emit the build phases / tier divergences as the same uniform metrics
  // document the serve side produces (see docs/OBSERVABILITY.md).
  metrics::MetricsRegistry reg;
  sketch.value().ExportBuildMetrics(&reg);
  std::printf("-- build metrics --\n%s", reg.TextExposition().c_str());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5) return Fail(Status::InvalidArgument("query needs 3+ args"));
  const std::string sketch_path = argv[2], sql = argv[3], csv_path = argv[4];

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  auto ranges = LoadNormalizer(sketch_path + ".norm");
  if (!ranges.ok()) return Fail(ranges.status());
  auto sketch = NeuroSketch::Load(sketch_path);
  if (!sketch.ok()) return Fail(sketch.status());

  const size_t want = pq.value().parameter_names().size();
  if (static_cast<size_t>(argc - 5) != want) {
    return Fail(Status::InvalidArgument(
        "template needs " + std::to_string(want) + " parameters"));
  }
  // Parameters arrive in original units; normalize each using the column
  // it constrains (exposed by the parser).
  std::vector<double> normed(want);
  for (size_t i = 0; i < want; ++i) {
    const double raw = std::strtod(argv[5 + i], nullptr);
    const size_t col = pq.value().parameter_columns()[i];
    if (col >= ranges.value().size()) {
      return Fail(Status::OutOfRange("norm sidecar missing column"));
    }
    const auto [lo, hi] = ranges.value()[col];
    normed[i] = (raw - lo) / (hi - lo);
  }
  auto q = pq.value().Bind(normed);
  if (!q.ok()) return Fail(q.status());
  const double answer = sketch.value().Answer(q.value());
  std::printf("%s = %.6f\n", pq.value().aggregate_name().c_str(), answer);
  return 0;
}

int CmdEval(int argc, char** argv) {
  if (argc < 5) return Fail(Status::InvalidArgument("eval needs 3+ args"));
  const std::string csv_path = argv[2], sql = argv[3], sketch_path = argv[4];
  const size_t n_test = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 300;

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  Normalizer norm = Normalizer::Fit(table_r.value());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(table_r.value(), norm, pq.value());
  auto sketch = NeuroSketch::Load(sketch_path);
  if (!sketch.ok()) return Fail(sketch.status());

  ExactEngine engine(&table);
  Rng rng(777);
  auto queries = RandomWorkload(pq.value(), n_test, &rng);
  Timer exact_t;
  auto truth = engine.AnswerBatch(pq.value().spec(), queries, 8);
  const double exact_us = exact_t.ElapsedMicros() / queries.size();
  Timer sk_t;
  auto pred = sketch.value().AnswerBatch(queries);
  const double sketch_us = sk_t.ElapsedMicros() / queries.size();
  std::vector<double> t2, p2;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::isnan(truth[i]) || std::isnan(pred[i])) continue;
    t2.push_back(truth[i]);
    p2.push_back(pred[i]);
  }
  std::printf("queries: %zu | norm MAE: %.4f | sketch %.2f us/q | exact "
              "%.2f us/q\n",
              t2.size(), stats::NormalizedMae(t2, p2), sketch_us, exact_us);
  return 0;
}

int CmdServe(int argc, char** argv) {
  if (argc < 5) return Fail(Status::InvalidArgument("serve needs 3+ args"));
  const std::string csv_path = argv[2], sql = argv[3], sketch_path = argv[4];
  const size_t n_queries =
      argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 20000;
  const size_t n_clients = argc > 6 ? std::strtoul(argv[6], nullptr, 10) : 4;
  const double metrics_interval_s =
      argc > 7 ? std::strtod(argv[7], nullptr) : 0.0;
  const size_t n_shards = argc > 8 ? std::strtoul(argv[8], nullptr, 10) : 0;
  if (n_queries == 0 || n_clients == 0) {
    return Fail(Status::InvalidArgument(
        "n_queries and n_clients must be positive integers"));
  }

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  Normalizer norm = Normalizer::Fit(table_r.value());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(table_r.value(), norm, pq.value());
  const QueryFunctionSpec& spec = pq.value().spec();

  ExactEngine engine(&table);
  serve::SketchStore store;
  Status st = store.RegisterDataset("cli", &engine);
  if (!st.ok()) return Fail(st);
  auto version = store.RegisterFromFile("cli", spec, sketch_path);
  if (version.ok()) {
    const auto listings = store.List();
    std::printf("registered %s as version %llu (%s plans)\n",
                sketch_path.c_str(),
                static_cast<unsigned long long>(version.value()),
                listings.empty()
                    ? "?"
                    : PlanPrecisionName(listings.front().precision));
  } else {
    std::printf("no sketch (%s); serving exact-only\n",
                version.status().ToString().c_str());
  }

  Rng rng(2026);
  const auto pool = RandomWorkload(pq.value(), 4096, &rng);
  if (pool.empty()) return Fail(Status::InvalidArgument("empty workload"));

  serve::ServeOptions serve_opts;
  serve_opts.num_shards = n_shards;  // 0 = one shard per hardware thread
  serve::ServeEngine serving(&store, serve_opts);
  std::printf("serving with %zu dispatcher shard%s\n", serving.num_shards(),
              serving.num_shards() == 1 ? "" : "s");

  // Optional periodic scrape: dump the registry every interval while the
  // clients run, the way a Prometheus scraper would poll /metrics.
  std::atomic<bool> serving_done{false};
  std::thread scraper;
  if (metrics_interval_s > 0.0) {
    scraper = std::thread([&] {
      const auto interval = std::chrono::duration<double>(metrics_interval_s);
      while (!serving_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(interval);
        metrics::MetricsRegistry reg;
        serving.ExportMetrics(&reg);
        std::printf("-- metrics scrape --\n%s", reg.TextExposition().c_str());
        std::fflush(stdout);
      }
    });
  }

  Timer t;
  std::vector<std::thread> clients;
  const size_t per_client = (n_queries + n_clients - 1) / n_clients;
  for (size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      constexpr size_t kBurst = 128;
      size_t done = 0;
      while (done < per_client) {
        const size_t n = std::min(kBurst, per_client - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(pool[(c * per_client + done + i) % pool.size()]);
        }
        serving.SubmitMany("cli", spec, std::move(burst)).get();
        done += n;
      }
    });
  }
  for (auto& c : clients) c.join();
  const double seconds = t.ElapsedSeconds();
  serving_done.store(true, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();

  const auto stats = serving.Snapshot();
  std::printf("served %llu queries from %zu clients in %.2fs\n",
              static_cast<unsigned long long>(stats.queries), n_clients,
              seconds);
  std::printf("  qps: %.0f | mean batch: %.1f | fallback rate: %.2f%% | "
              "f32 answers: %llu | int8 answers: %llu\n",
              static_cast<double>(stats.queries) / seconds,
              stats.mean_batch_size, 100.0 * stats.fallback_rate,
              static_cast<unsigned long long>(stats.f32_sketch_answers),
              static_cast<unsigned long long>(stats.int8_sketch_answers));
  std::printf("  latency p50/p95/p99/p99.9: %.0f / %.0f / %.0f / %.0f us\n",
              stats.p50_us, stats.p95_us, stats.p99_us, stats.p999_us);
  if (stats.stage_tracing && stats.stage_queue.count > 0) {
    std::printf("  stage p50 (us): queue %.0f | assembly %.0f | inference "
                "%.0f | fulfill %.0f\n",
                stats.stage_queue.p50_us, stats.stage_assembly.p50_us,
                stats.stage_inference.p50_us, stats.stage_fulfill.p50_us);
  }
  if (metrics_interval_s > 0.0) {
    metrics::MetricsRegistry reg;
    serving.ExportMetrics(&reg);
    std::printf("-- final metrics --\n%s", reg.TextExposition().c_str());
  }
  return 0;
}

int CmdStream(int argc, char** argv) {
  if (argc < 5) return Fail(Status::InvalidArgument("stream needs 3+ args"));
  const std::string csv_path = argv[2], sql = argv[3], sketch_path = argv[4];
  const size_t n_queries =
      argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 20000;
  const size_t n_clients = argc > 6 ? std::strtoul(argv[6], nullptr, 10) : 4;
  const double append_frac = argc > 7 ? std::strtod(argv[7], nullptr) : 0.2;
  const int64_t refresh_interval_ms =
      argc > 8 ? std::strtol(argv[8], nullptr, 10) : 100;
  const double max_nmae = argc > 9 ? std::strtod(argv[9], nullptr) : 0.2;
  const size_t compact_min_rows =
      argc > 10 ? std::strtoul(argv[10], nullptr, 10) : 4096;
  if (n_queries == 0 || n_clients == 0 || append_frac <= 0.0 ||
      append_frac >= 1.0) {
    return Fail(Status::InvalidArgument(
        "n_queries/n_clients must be positive and append_frac in (0,1)"));
  }

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  Normalizer norm = Normalizer::Fit(table_r.value());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(table_r.value(), norm, pq.value());
  const QueryFunctionSpec& spec = pq.value().spec();

  // Hold back the last append_frac of the rows: they arrive as live
  // appends while the workload is being served, so the sketch (trained
  // on the full CSV or not) is queried against a table that grows under
  // it — the delta composition keeps answers exact, and the refresh
  // loop folds the growth into the model.
  const size_t total_rows = table.num_rows();
  const size_t base_rows = total_rows -
                           static_cast<size_t>(append_frac *
                                               static_cast<double>(total_rows));
  if (base_rows == 0 || base_rows == total_rows) {
    return Fail(Status::InvalidArgument("append split leaves no rows"));
  }
  const size_t cols = table.num_columns();
  Table base(table.schema());
  std::vector<std::vector<double>> tail;
  {
    std::vector<double> row(cols);
    for (size_t i = 0; i < total_rows; ++i) {
      for (size_t c = 0; c < cols; ++c) row[c] = table.column(c)[i];
      if (i < base_rows) {
        Status st = base.AppendRow(row);
        if (!st.ok()) return Fail(st);
      } else {
        tail.push_back(row);
      }
    }
  }

  // The base is swappable so compaction can fold delta rows into it
  // while serving continues on pinned versions.
  StreamingTable streaming_base(std::move(base));
  ExactEngine engine(&streaming_base);
  serve::SketchStore store;
  Status st = store.RegisterDataset("cli", &engine);
  if (!st.ok()) return Fail(st);
  st = store.EnableStreaming("cli", cols);
  if (!st.ok()) return Fail(st);
  st = store.AttachStreamingTable("cli", &streaming_base);
  if (!st.ok()) return Fail(st);
  auto version = store.RegisterFromFile("cli", spec, sketch_path);
  if (version.ok()) {
    std::printf("registered %s as version %llu\n", sketch_path.c_str(),
                static_cast<unsigned long long>(version.value()));
  } else {
    std::printf("no sketch (%s); serving exact-only\n",
                version.status().ToString().c_str());
  }
  std::printf("base %zu rows, streaming in %zu rows while serving\n",
              base_rows, tail.size());

  Rng rng(2026);
  const auto pool = RandomWorkload(pq.value(), 4096, &rng);
  if (pool.size() < 512) {
    return Fail(Status::InvalidArgument("template workload too small"));
  }

  serve::ServeEngine serving(&store, serve::ServeOptions{});

  // Drift-driven refresh: probes and retrain queries are disjoint slices
  // of the same random workload; the policy bound is the knob.
  serve::RefreshOptions ropts;
  ropts.interval_ms = refresh_interval_ms > 0 ? refresh_interval_ms : 100;
  ropts.probe_threads = 0;  // hardware concurrency
  ropts.compact_min_rows = compact_min_rows;
  serve::RefreshController refresher(&store, &serving, ropts);
  if (version.ok() && refresh_interval_ms > 0) {
    DriftPolicy policy;
    policy.max_normalized_mae = max_nmae;
    std::vector<QueryInstance> probes(pool.begin(), pool.begin() + 256);
    std::vector<QueryInstance> retrain_q(pool.begin() + 256, pool.end());
    NeuroSketchConfig cfg;  // CmdTrain's schedule, for the partial retrain
    cfg.train.epochs = 150;
    refresher.AddTarget(serve::RefreshTarget{
        "cli", DriftMonitor(spec, std::move(probes), policy), cfg,
        std::move(retrain_q)});
    std::printf("refresh loop: every %lld ms, drift bound %.3f\n",
                static_cast<long long>(ropts.interval_ms), max_nmae);
  }
  if (refresh_interval_ms > 0) {
    // Even with no sketch target (exact-only serving) the loop's sweep
    // still compacts the delta into the base table at the threshold.
    refresher.Start();
    if (compact_min_rows > 0) {
      std::printf("compaction: folding the delta into the base past %zu "
                  "resident rows\n",
                  compact_min_rows);
    }
  }

  Timer t;
  std::thread appender([&] {
    // Spread the appends across the serving window in 256-row batches.
    for (size_t i = 0; i < tail.size(); i += 256) {
      const size_t n = std::min<size_t>(256, tail.size() - i);
      std::vector<std::vector<double>> chunk(tail.begin() + i,
                                             tail.begin() + i + n);
      (void)store.AppendRows("cli", chunk);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> clients;
  const size_t per_client = (n_queries + n_clients - 1) / n_clients;
  for (size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      constexpr size_t kBurst = 128;
      size_t done = 0;
      while (done < per_client) {
        const size_t n = std::min(kBurst, per_client - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(pool[(c * per_client + done + i) % pool.size()]);
        }
        serving.SubmitMany("cli", spec, std::move(burst)).get();
        done += n;
      }
    });
  }
  for (auto& c : clients) c.join();
  appender.join();
  const double seconds = t.ElapsedSeconds();
  refresher.Stop();

  const auto stats = serving.Snapshot();
  std::printf("served %llu queries in %.2fs (%.0f qps), p50/p99 %.0f/%.0f "
              "us\n",
              static_cast<unsigned long long>(stats.queries), seconds,
              static_cast<double>(stats.queries) / seconds, stats.p50_us,
              stats.p99_us);
  std::printf("  delta-corrected answers: %llu | exact recomputes: %llu | "
              "fallback rate: %.2f%%\n",
              static_cast<unsigned long long>(stats.delta_corrected_answers),
              static_cast<unsigned long long>(stats.delta_exact_answers),
              100.0 * stats.fallback_rate);
  for (const auto& [name, dstats] : store.DeltaStats()) {
    std::printf("  delta %s: %zu live rows (%llu append calls, %llu rows "
                "appended, %llu trimmed)\n",
                name.c_str(), dstats.rows,
                static_cast<unsigned long long>(dstats.appends),
                static_cast<unsigned long long>(dstats.rows_appended),
                static_cast<unsigned long long>(dstats.trimmed_rows));
  }
  for (const auto& [name, cstats] : store.CompactionStats()) {
    std::printf("  compaction %s: %llu folds, %llu rows moved into the "
                "base (table now %zu rows, fold watermark %llu)\n",
                name.c_str(),
                static_cast<unsigned long long>(cstats.compactions),
                static_cast<unsigned long long>(cstats.folded_rows),
                streaming_base.Pin()->table.num_rows(),
                static_cast<unsigned long long>(streaming_base.folded()));
  }
  const auto rstats = refresher.Stats();
  std::printf("  refresh: %llu runs, %llu swaps, %llu leaves retrained, "
              "%llu failures, %llu demotions, %llu in-bound skips\n",
              static_cast<unsigned long long>(rstats.runs),
              static_cast<unsigned long long>(rstats.swaps),
              static_cast<unsigned long long>(rstats.retrained_leaves),
              static_cast<unsigned long long>(rstats.failures),
              static_cast<unsigned long long>(rstats.demotions),
              static_cast<unsigned long long>(rstats.skipped));
  metrics::MetricsRegistry reg;
  serving.ExportMetrics(&reg);  // includes the nsketch_serve_delta_* series
  refresher.ExportMetrics(&reg);
  std::printf("-- final metrics --\n%s", reg.TextExposition().c_str());
  return 0;
}

/// Prints the slowest captured queries with their stage attribution —
/// where did each tail-latency microsecond go?
void PrintSlowQueries(const serve::ServeEngine& serving) {
  const auto slow = serving.SlowQueries();
  if (slow.empty()) return;
  std::printf("-- slowest queries --\n");
  for (const auto& q : slow) {
    std::printf("  %8.0f us total | queue %6.0f | assembly %5.0f | "
                "inference %6.0f | fulfill %5.0f | %s | %s | batch %zu\n",
                q.total_us, q.queue_us, q.assembly_us, q.inference_us,
                q.fulfill_us, q.store.c_str(), q.tier.c_str(), q.batch_size);
  }
}

int CmdCatalogPack(int argc, char** argv) {
  // argv: catalog pack <data.csv> <out.cat> "<sql>" <file> [...]
  if (argc < 7 || (argc - 5) % 2 != 0) {
    return Fail(Status::InvalidArgument(
        "catalog pack needs <data.csv> <out.cat> and (template, sketch) "
        "pairs"));
  }
  const std::string csv_path = argv[3], out_path = argv[4];
  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());

  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
      sketches;
  for (int i = 5; i + 1 < argc; i += 2) {
    auto pq = ParametricQuery::Parse(argv[i], table_r.value().schema());
    if (!pq.ok()) return Fail(pq.status());
    auto sketch = NeuroSketch::Load(argv[i + 1]);
    if (!sketch.ok()) return Fail(sketch.status());
    sketches.emplace_back(
        QueryFunctionKey::From(pq.value().spec()),
        std::make_shared<const NeuroSketch>(std::move(sketch).value()));
  }
  Status st = WritePagedCatalog(out_path, sketches);
  if (!st.ok()) return Fail(st);
  size_t total = 0;
  for (const auto& [key, sk] : sketches) total += sk->SizeBytes();
  std::printf("packed %zu sketches (%.1f KB of images) into %s\n",
              sketches.size(), total / 1024.0, out_path.c_str());
  return 0;
}

int CmdCatalogServe(int argc, char** argv) {
  // argv: catalog serve <data.csv> <catalog.cat> "<sql>" [nq] [nc] [mb]
  if (argc < 6) {
    return Fail(Status::InvalidArgument(
        "catalog serve needs <data.csv> <catalog.cat> and a template"));
  }
  const std::string csv_path = argv[3], cat_path = argv[4], sql = argv[5];
  const size_t n_queries =
      argc > 6 ? std::strtoul(argv[6], nullptr, 10) : 20000;
  const size_t n_clients = argc > 7 ? std::strtoul(argv[7], nullptr, 10) : 4;
  const double budget_mb = argc > 8 ? std::strtod(argv[8], nullptr) : 0.0;
  if (n_queries == 0 || n_clients == 0) {
    return Fail(Status::InvalidArgument(
        "n_queries and n_clients must be positive integers"));
  }

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  Normalizer norm = Normalizer::Fit(table_r.value());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(table_r.value(), norm, pq.value());
  const QueryFunctionSpec& spec = pq.value().spec();

  ExactEngine engine(&table);
  serve::SketchStore store;
  Status st = store.RegisterDataset("cli", &engine);
  if (!st.ok()) return Fail(st);
  serve::PagedCatalogOptions opts;
  opts.max_resident_bytes = static_cast<size_t>(budget_mb * 1024.0 * 1024.0);
  auto attached = store.AttachPagedCatalog("cli", cat_path, opts);
  if (!attached.ok()) return Fail(attached.status());
  std::printf("attached %zu cold sketches from %s (budget: %s)\n",
              attached.value(), cat_path.c_str(),
              opts.max_resident_bytes == 0
                  ? "unbounded"
                  : (std::to_string(opts.max_resident_bytes / 1024) + " KB")
                        .c_str());

  Rng rng(2026);
  const auto pool = RandomWorkload(pq.value(), 4096, &rng);
  if (pool.empty()) return Fail(Status::InvalidArgument("empty workload"));

  serve::ServeEngine serving(&store);
  Timer t;
  std::vector<std::thread> clients;
  const size_t per_client = (n_queries + n_clients - 1) / n_clients;
  for (size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      constexpr size_t kBurst = 128;
      size_t done = 0;
      while (done < per_client) {
        const size_t n = std::min(kBurst, per_client - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(pool[(c * per_client + done + i) % pool.size()]);
        }
        serving.SubmitMany("cli", spec, std::move(burst)).get();
        done += n;
      }
    });
  }
  for (auto& c : clients) c.join();
  const double seconds = t.ElapsedSeconds();

  const auto stats = serving.Snapshot();
  const auto ps = store.PagedStats();
  std::printf("served %llu queries from %zu clients in %.2fs (%.0f qps)\n",
              static_cast<unsigned long long>(stats.queries), n_clients,
              seconds, static_cast<double>(stats.queries) / seconds);
  std::printf("  latency p50/p99: %.0f / %.0f us | fallback rate: %.2f%%\n",
              stats.p50_us, stats.p99_us, 100.0 * stats.fallback_rate);
  std::printf("  pool: %.1f KB resident (peak %.1f KB, budget %s) | "
              "%llu fault-ins | %llu hits | %llu evictions\n",
              ps.resident_bytes / 1024.0, ps.peak_resident_bytes / 1024.0,
              ps.max_bytes == 0
                  ? "unbounded"
                  : (std::to_string(ps.max_bytes / 1024) + " KB").c_str(),
              static_cast<unsigned long long>(ps.faultins),
              static_cast<unsigned long long>(ps.hits),
              static_cast<unsigned long long>(ps.evictions));
  return 0;
}

int CmdCatalog(int argc, char** argv) {
  const std::string sub = argc > 2 ? argv[2] : "";
  if (sub == "pack") return CmdCatalogPack(argc, argv);
  if (sub == "serve") return CmdCatalogServe(argc, argv);
  return Fail(Status::InvalidArgument("catalog needs pack or serve"));
}

int CmdMetrics(int argc, char** argv) {
  if (argc < 4) return Fail(Status::InvalidArgument("metrics needs 2+ args"));
  const std::string csv_path = argv[2], sql = argv[3];
  const size_t n_train = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 1500;
  const size_t n_queries =
      argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 4000;

  auto table_r = Table::FromCsvFile(csv_path);
  if (!table_r.ok()) return Fail(table_r.status());
  Normalizer norm = Normalizer::Fit(table_r.value());
  auto pq = ParametricQuery::Parse(sql, table_r.value().schema());
  if (!pq.ok()) return Fail(pq.status());
  Table table = PrepareQueryTable(table_r.value(), norm, pq.value());
  const QueryFunctionSpec& spec = pq.value().spec();

  // Build a small sketch in-process so the document carries real
  // partition/train/calibrate timings, then push a workload through the
  // serve engine so every serve family is populated too.
  ExactEngine engine(&table);
  Rng rng(4242);
  auto train_q = RandomWorkload(pq.value(), n_train, &rng);
  auto train_a = engine.AnswerBatch(spec, train_q, 8);
  NeuroSketchConfig config;
  config.train.epochs = 60;
  auto sketch = NeuroSketch::Train(train_q, train_a, config);
  if (!sketch.ok()) return Fail(sketch.status());

  metrics::MetricsRegistry reg;
  sketch.value().ExportBuildMetrics(&reg);

  serve::SketchStore store;
  Status st = store.RegisterDataset("cli", &engine);
  if (!st.ok()) return Fail(st);
  auto ver = store.Register("cli", spec, std::move(sketch).value());
  if (!ver.ok()) return Fail(ver.status());

  serve::ServeEngine serving(&store);
  const auto pool = RandomWorkload(pq.value(), 1024, &rng);
  if (pool.empty()) return Fail(Status::InvalidArgument("empty workload"));
  constexpr size_t kBurst = 128;
  size_t done = 0;
  while (done < n_queries) {
    const size_t n = std::min(kBurst, n_queries - done);
    std::vector<QueryInstance> burst;
    burst.reserve(n);
    for (size_t i = 0; i < n; ++i) burst.push_back(pool[(done + i) % pool.size()]);
    serving.SubmitMany("cli", spec, std::move(burst)).get();
    done += n;
  }
  serving.ExportMetrics(&reg);
  std::printf("%s", reg.TextExposition().c_str());
  PrintSlowQueries(serving);
  return 0;
}

void SelfDemo() {
  // With no arguments, run a self-contained demo: synthesize a CSV,
  // train, query, eval, clean up.
  std::printf("no arguments: running self-demo\n");
  Rng rng(1);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 8000; ++i) {
    const double x = rng.Uniform(0.0, 100.0);
    const double y = rng.Uniform(0.0, 50.0);
    const double m = 10.0 + 0.5 * x - 0.2 * y + rng.Normal(0, 2.0);
    rows.push_back({x, y, m});
  }
  const std::string csv_path = "nsketch_demo.csv";
  Status st = csv::WriteNumeric(csv_path, {"x", "y", "m"}, rows);
  if (!st.ok()) return;
  const char* sql = "SELECT AVG(m) FROM t WHERE x BETWEEN ?a AND ?b";
  {
    const char* argv_train[] = {"nsketch_cli", "train", csv_path.c_str(), sql,
                                "demo.sketch", "2000"};
    CmdTrain(6, const_cast<char**>(argv_train));
  }
  {
    const char* argv_query[] = {"nsketch_cli", "query",     "demo.sketch",
                                sql,           csv_path.c_str(), "20",
                                "80"};
    CmdQuery(7, const_cast<char**>(argv_query));
  }
  {
    const char* argv_eval[] = {"nsketch_cli", "eval", csv_path.c_str(), sql,
                               "demo.sketch"};
    CmdEval(5, const_cast<char**>(argv_eval));
  }
  {
    const char* argv_serve[] = {"nsketch_cli",    "serve", csv_path.c_str(),
                                sql,              "demo.sketch", "20000",
                                "4"};
    CmdServe(7, const_cast<char**>(argv_serve));
  }
  {
    const char* argv_pack[] = {"nsketch_cli", "catalog",     "pack",
                               csv_path.c_str(), "demo.cat", sql,
                               "demo.sketch"};
    CmdCatalog(7, const_cast<char**>(argv_pack));
  }
  {
    const char* argv_cserve[] = {"nsketch_cli", "catalog",  "serve",
                                 csv_path.c_str(), "demo.cat", sql,
                                 "8000",        "2"};
    CmdCatalog(8, const_cast<char**>(argv_cserve));
  }
  std::remove(csv_path.c_str());
  std::remove("demo.sketch");
  std::remove("demo.sketch.norm");
  std::remove("demo.cat");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    SelfDemo();
    return 0;
  }
  const std::string cmd = argv[1];
  if (cmd == "train") return CmdTrain(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "eval") return CmdEval(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  if (cmd == "stream") return CmdStream(argc, argv);
  if (cmd == "catalog") return CmdCatalog(argc, argv);
  if (cmd == "metrics") return CmdMetrics(argc, argv);
  std::fprintf(stderr,
               "usage: %s train|query|eval|serve|stream|catalog|metrics ... "
               "(run with no args for a demo)\n",
               argv[0]);
  return 1;
}
