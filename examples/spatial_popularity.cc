// Spatial analytics scenario (the paper's running example + Table 2):
// a location-data aggregator wants to publish POI popularity statistics
// (median visit duration for arbitrary, possibly rotated, rectangles)
// WITHOUT shipping the raw location data. It trains a NeuroSketch on the
// median-visit-duration query function, saves it to disk, and a consumer
// loads the file and answers queries with no access to the data.
//
// Build & run:  ./build/examples/spatial_popularity
#include <cmath>
#include <cstdio>

#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/predicate.h"
#include "util/stats.h"

using namespace neurosketch;

int main() {
  // --- Data-owner side -----------------------------------------------
  Dataset dataset = MakeVerasetLike(20000, 11);
  Normalizer norm = Normalizer::Fit(dataset.table);
  Table table = norm.Transform(dataset.table);
  ExactEngine engine(&table);

  // Query function: MEDIAN(duration) over rotated rectangles
  // q = (corner p, opposite corner p', angle phi).
  QueryFunctionSpec spec;
  spec.predicate = RotatedRectPredicate::Make();
  spec.agg = Aggregate::kMedian;
  spec.measure_col = dataset.measure_col;

  WorkloadConfig wc;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.4;
  wc.min_matches = 5;
  wc.seed = 12;
  WorkloadGenerator gen(table.num_columns(), wc);
  auto train_q = gen.GenerateRotatedRects(2000, &engine, &spec);
  auto train_a = engine.AnswerBatch(spec, train_q, 4);

  NeuroSketchConfig config;
  config.train.epochs = 150;
  auto sketch = NeuroSketch::Train(train_q, train_a, config);
  if (!sketch.ok()) {
    std::fprintf(stderr, "%s\n", sketch.status().ToString().c_str());
    return 1;
  }
  const std::string artifact = "popularity_sketch.bin";
  if (!sketch.value().Save(artifact).ok()) return 1;
  std::printf("data owner: published %s (%.1f KB; raw data is %.1f MB)\n",
              artifact.c_str(), sketch.value().SizeBytes() / 1024.0,
              table.SizeBytes() / (1024.0 * 1024.0));

  // --- Consumer side ---------------------------------------------------
  auto consumer = NeuroSketch::Load(artifact);
  if (!consumer.ok()) return 1;

  // The consumer asks for median visit duration of a rotated rectangle
  // around a downtown block (normalized coordinates).
  const double phi = 0.35;
  const double px = 0.42, py = 0.31, w = 0.2, h = 0.12;
  QueryInstance block(std::vector<double>{
      px, py, px + std::cos(phi) * w - std::sin(phi) * h,
      py + std::sin(phi) * w + std::cos(phi) * h, phi});
  const double approx = consumer.value().Answer(block);
  const double exact = engine.Answer(spec, block);  // owner-side check
  std::printf("consumer: median visit duration = %.3f h (exact %.3f h)\n",
              approx, exact);

  // Batch evaluation on held-out rectangles.
  wc.seed = 13;
  WorkloadGenerator tg(table.num_columns(), wc);
  auto test_q = tg.GenerateRotatedRects(200, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, test_q, 4);
  auto pred = consumer.value().AnswerBatch(test_q);
  std::vector<double> t2, p2;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::isnan(truth[i])) continue;
    t2.push_back(truth[i]);
    p2.push_back(pred[i]);
  }
  std::printf("consumer: normalized MAE over 200 rectangles = %.4f\n",
              stats::NormalizedMae(t2, p2));
  std::remove(artifact.c_str());
  return 0;
}
