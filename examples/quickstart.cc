// Quickstart: the 60-second tour of the public API.
//
//   1. get a table (here: synthetic location visits),
//   2. normalize attributes into [0,1],
//   3. define a query function (AVG of a measure over axis ranges),
//   4. generate a training workload and exact answers,
//   5. train a NeuroSketch,
//   6. answer queries with a forward pass and compare against exact.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>

#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/predicate.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace neurosketch;

int main() {
  // 1. Data: 20k location visits (lat, lon, visit duration).
  Dataset dataset = MakeVerasetLike(20000, /*seed=*/1);
  std::printf("dataset: %s, %zu rows, %zu columns\n", dataset.name.c_str(),
              dataset.table.num_rows(), dataset.table.num_columns());

  // 2. Normalize all attributes into [0,1] (the problem setting of the
  // paper, Sec. 2). Keep the normalizer to map back and forth.
  Normalizer norm = Normalizer::Fit(dataset.table);
  Table table = norm.Transform(dataset.table);

  // 3. Query function: AVG(duration) over lat/lon rectangles.
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = dataset.measure_col;

  // 4. Training workload: lat/lon active, uniform ranges.
  ExactEngine engine(&table);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.5;
  wc.min_matches = 5;
  wc.seed = 2;
  WorkloadGenerator workload(table.num_columns(), wc);

  // 5. Train (partitioning + merging + per-leaf MLPs).
  NeuroSketchConfig config;  // paper defaults (h=4, s=8, 5x60/30 MLPs)
  config.train.epochs = 150;
  Timer build_timer;
  auto sketch = NeuroSketch::TrainFromEngine(engine, spec, &workload,
                                             /*num_train=*/2000, config);
  if (!sketch.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 sketch.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %zu partition models in %.1fs, total size %.1f KB\n",
              sketch.value().num_partitions(), build_timer.ElapsedSeconds(),
              sketch.value().SizeBytes() / 1024.0);

  // 6. Answer held-out queries; compare against the exact engine.
  wc.seed = 3;
  WorkloadGenerator test_gen(table.num_columns(), wc);
  auto test_q = test_gen.GenerateMany(200, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, test_q);

  Timer q_timer;
  auto approx = sketch.value().AnswerBatch(test_q);
  const double per_query_us = q_timer.ElapsedMicros() / test_q.size();

  std::vector<double> t2, p2;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::isnan(truth[i])) continue;
    t2.push_back(truth[i]);
    p2.push_back(approx[i]);
  }
  std::printf("normalized MAE: %.4f | %.2f us/query (exact scan: the whole "
              "table per query)\n",
              stats::NormalizedMae(t2, p2), per_query_us);

  // A single concrete query, in original units.
  QueryInstance q = test_q[0];
  std::printf("example query answer: exact=%.3f h, sketch=%.3f h\n",
              truth[0], approx[0]);
  return 0;
}
