// DQD advisor tour (Sec. 4.3, "NeuroSketch and DQD in Practice"): how a
// query optimizer uses the DQD machinery.
//
//   maintenance time: estimate the normalized AQC of each candidate query
//     function and only build sketches for the easy ones;
//   query time: route wide-range queries to the sketch and narrow-range
//     queries to the exact engine (HybridExecutor).
//
// Build & run:  ./build/examples/advisor_tour
#include <cmath>
#include <cstdio>

#include "core/advisor.h"
#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/predicate.h"
#include "theory/dqd.h"
#include "util/stats.h"

using namespace neurosketch;

int main() {
  Dataset dataset = MakeVerasetLike(20000, 31);
  Normalizer norm = Normalizer::Fit(dataset.table);
  Table table = norm.Transform(dataset.table);
  ExactEngine engine(&table);

  // --- Maintenance: which query functions deserve a sketch? ------------
  // Candidate 1: AVG(duration) over lat/lon (spatially sharp -> higher AQC).
  // Candidate 2: AVG(latitude) over lat ranges (smooth -> low AQC).
  struct Candidate {
    const char* label;
    QueryFunctionSpec spec;
    WorkloadConfig wc;
  };
  std::vector<Candidate> candidates;
  {
    Candidate c;
    c.label = "AVG(duration) by lat/lon";
    c.spec.predicate = AxisRangePredicate::Make();
    c.spec.agg = Aggregate::kAvg;
    c.spec.measure_col = 2;
    c.wc.num_active = 2;
    c.wc.fixed_attrs = {0, 1};
    c.wc.range_frac_lo = 0.05;
    c.wc.range_frac_hi = 0.5;
    c.wc.min_matches = 5;
    c.wc.seed = 32;
    candidates.push_back(c);
  }
  {
    Candidate c;
    c.label = "AVG(latitude) by lat";
    c.spec.predicate = AxisRangePredicate::Make();
    c.spec.agg = Aggregate::kAvg;
    c.spec.measure_col = 0;
    c.wc.num_active = 1;
    c.wc.candidate_attrs = {0};
    c.wc.range_frac_lo = 0.05;
    c.wc.range_frac_hi = 0.5;
    c.wc.min_matches = 5;
    c.wc.seed = 33;
    candidates.push_back(c);
  }

  AdvisorConfig acfg;
  acfg.max_buildable_aqc = 5.0;
  acfg.min_range_frac = 0.03;
  Advisor advisor(acfg);

  std::printf("maintenance-time decisions (AQC threshold %.1f):\n",
              acfg.max_buildable_aqc);
  for (auto& cand : candidates) {
    WorkloadGenerator gen(table.num_columns(), cand.wc);
    auto queries = gen.GenerateMany(600, &engine, &cand.spec);
    auto answers = engine.AnswerBatch(cand.spec, queries);
    const double aqc = Advisor::EstimateNormalizedAqc(queries, answers);
    std::printf("  %-26s norm AQC = %6.3f -> %s\n", cand.label, aqc,
                advisor.ShouldBuild(aqc) ? "BUILD sketch" : "use engine");
  }

  // The DQD calculators the optimizer can also consult.
  std::printf(
      "\nDQD bound samples (Thm 3.5): eps2 at 99.9%% confidence for d=2:\n");
  for (size_t n : {10000u, 100000u, 1000000u}) {
    std::printf("  n=%-8zu eps2=%.4f\n", n,
                theory::SamplingErrorForConfidence(1e-3, n, 2));
  }

  // --- Query time: hybrid dispatch --------------------------------------
  Candidate& main_cand = candidates[0];
  WorkloadGenerator gen(table.num_columns(), main_cand.wc);
  NeuroSketchConfig config;
  config.train.epochs = 120;
  auto sketch = NeuroSketch::TrainFromEngine(engine, main_cand.spec, &gen,
                                             1200, config);
  if (!sketch.ok()) return 1;
  HybridExecutor hybrid(&sketch.value(), &engine, main_cand.spec, advisor);

  // Mixed workload: some wide, some very narrow ranges.
  WorkloadConfig mixed = main_cand.wc;
  mixed.range_frac_lo = 0.005;
  mixed.range_frac_hi = 0.5;
  mixed.seed = 34;
  WorkloadGenerator mixed_gen(table.num_columns(), mixed);
  auto queries = mixed_gen.GenerateMany(200, &engine, &main_cand.spec);
  size_t to_sketch = 0;
  std::vector<double> truth, pred;
  for (const auto& q : queries) {
    auto ans = hybrid.Execute(q);
    if (ans.used_sketch) ++to_sketch;
    const double exact = engine.Answer(main_cand.spec, q);
    if (!std::isnan(exact) && !std::isnan(ans.value)) {
      truth.push_back(exact);
      pred.push_back(ans.value);
    }
  }
  std::printf(
      "\nquery-time dispatch: %zu/%zu queries served by the sketch, "
      "norm MAE %.4f\n",
      to_sketch, queries.size(), stats::NormalizedMae(truth, pred));
  std::printf("(narrow ranges fell back to the exact engine, so the hybrid\n"
              " stays accurate where Lemma 3.6 predicts high sampling "
              "error)\n");
  return 0;
}
