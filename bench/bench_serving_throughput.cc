// Serving throughput benchmark: client-thread count x micro-batch window
// sweep over the serve/ subsystem, reporting QPS and latency percentiles,
// plus the headline comparison the serving subsystem exists for:
// micro-batched serving vs per-query Answer dispatch on the same sketch,
// a single-query latency section (p50/p95/p99 in ns) comparing the
// Matrix-allocating scalar path against the compiled zero-allocation
// inference plans in every precision tier (f64 reference, opt-in f32,
// opt-in int8 — each narrow tier with its validated max divergence and
// footprint), and a vectorized-batch section per tier (the float-
// marshalled gather path). Emits a BENCH_serving.json snapshot (written
// to the working directory) so the perf trajectory can be tracked across
// commits; the snapshot also carries the observability sections — the
// headline run's per-stage latency breakdown and per-store stats, the
// stage-tracing on/off overhead on the single-query serve path (CI gates
// it via tools/check_serving_overhead.sh), the metrics-registry document
// (nsketch_build_* + nsketch_serve_*) under "metrics", a "multi_core"
// shard-count sweep (same gate script sanity-checks 4-shard scaling on
// >= 4-core machines), a "zipfian" skewed-load arm (s = 0.99 over 16
// stores) with tail percentiles, hottest-store share, and shard-load
// imbalance, and a "paged_catalog" arm: 256 cold sketches packed into
// one catalog file served under a 25% / 50% / 100% resident-byte budget
// vs a fully-resident baseline, with fault-in p50/p99, pool churn, and a
// bit-identity check of every served answer (CI gates answers_match and
// peak <= budget via tools/check_resident_budget.sh), and a "streaming"
// arm: serving under live appends with drift-driven refresh off vs on —
// QPS, stale-sketch vs post-refresh probe MAE against the drift policy
// bound, refresh lag, partial-retrain accounting, and a quiescent
// bit-identity check of the delta-composition contract, and a
// "compaction" arm: sustained appends against a swappable base table
// with the delta folded in (explicit Compact calls vs the refresh
// controller's threshold sweep), reporting fold/trim accounting, the
// bounded resident delta, and mid-run bit-identity against from-scratch
// scans (CI gates freshness + answers_match + bounded compaction via
// tools/check_streaming_freshness.sh).
//
// Usage: bench_serving_throughput [out.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/catalog.h"
#include "core/drift.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "data/streaming_table.h"
#include "serve/refresh.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/buffer_pool.h"
#include "util/metrics.h"
#include "util/random.h"

namespace neurosketch {
namespace bench {
namespace {

using serve::DeltaBuffer;
using serve::RefreshController;
using serve::RefreshOptions;
using serve::RefreshStats;
using serve::RefreshTarget;
using serve::ServeEngine;
using serve::ServeKey;
using serve::ServeOptions;
using serve::ServeResult;
using serve::ServeStats;
using serve::SketchStore;

struct RunResult {
  std::string mode;
  size_t clients = 0;
  double window_us = 0.0;
  size_t max_batch = 0;
  size_t shards = 0;  // dispatcher shards the engine actually ran with
  double qps = 0.0;
  ServeStats stats;
};

constexpr size_t kPerClient = 8000;
constexpr size_t kBurst = 128;  // client-side submission burst

/// Single-query forward-pass latency percentiles, in nanoseconds.
struct LatencyNs {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Times each call individually (steady_clock, ~20-30ns overhead, paid
/// equally by both paths) and reports sample percentiles.
template <typename Fn>
LatencyNs MeasureSingleQuery(const std::vector<QueryInstance>& pool,
                             const Fn& answer_one) {
  using SteadyClock = std::chrono::steady_clock;
  constexpr size_t kWarmup = 5000;
  constexpr size_t kSamples = 50000;
  double sink = 0.0;
  for (size_t i = 0; i < kWarmup; ++i) {
    sink += answer_one(pool[i % pool.size()]);
  }
  std::vector<double> ns(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    const auto t0 = SteadyClock::now();
    sink += answer_one(pool[i % pool.size()]);
    const auto t1 = SteadyClock::now();
    ns[i] = std::chrono::duration<double, std::nano>(t1 - t0).count();
  }
  volatile double keep = sink;  // keep the timed calls observable
  (void)keep;
  std::sort(ns.begin(), ns.end());
  LatencyNs out;
  out.p50 = ns[kSamples / 2];
  out.p95 = ns[kSamples * 95 / 100];
  out.p99 = ns[kSamples * 99 / 100];
  return out;
}

/// Per-query dispatch: batching disabled, one Answer call per request.
RunResult RunPerQuery(const SketchStore* store, const QueryFunctionSpec& spec,
                      const std::vector<QueryInstance>& pool, size_t clients,
                      bool stage_tracing = true) {
  ServeOptions opts;
  opts.max_batch = 1;
  opts.batch_window_us = 0.0;
  opts.stage_tracing = stage_tracing;
  ServeEngine eng(store, opts);
  Timer t;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<ServeResult>> futs;
      futs.reserve(kBurst);
      size_t done = 0;
      while (done < kPerClient) {
        const size_t n = std::min(kBurst, kPerClient - done);
        futs.clear();
        for (size_t i = 0; i < n; ++i) {
          futs.push_back(eng.Submit(
              "bench", spec, pool[(c * kPerClient + done + i) % pool.size()]));
        }
        for (auto& f : futs) f.get();
        done += n;
      }
    });
  }
  for (auto& th : threads) th.join();
  RunResult r;
  r.mode = "per_query";
  r.clients = clients;
  r.max_batch = 1;
  r.shards = eng.num_shards();
  r.qps = static_cast<double>(clients * kPerClient) / t.ElapsedSeconds();
  r.stats = eng.Snapshot();
  return r;
}

/// Micro-batched dispatch: burst submission + server-side coalescing.
RunResult RunBatched(const SketchStore* store, const QueryFunctionSpec& spec,
                     const std::vector<QueryInstance>& pool, size_t clients,
                     size_t max_batch, double window_us,
                     metrics::MetricsRegistry* export_reg = nullptr) {
  ServeOptions opts;
  opts.max_batch = max_batch;
  opts.batch_window_us = window_us;
  ServeEngine eng(store, opts);
  Timer t;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t done = 0;
      while (done < kPerClient) {
        const size_t n = std::min(kBurst, kPerClient - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(
              pool[(c * kPerClient + done + i) % pool.size()]);
        }
        eng.SubmitMany("bench", spec, std::move(burst)).get();
        done += n;
      }
    });
  }
  for (auto& th : threads) th.join();
  RunResult r;
  r.mode = "micro_batch";
  r.clients = clients;
  r.window_us = window_us;
  r.max_batch = max_batch;
  r.shards = eng.num_shards();
  r.qps = static_cast<double>(clients * kPerClient) / t.ElapsedSeconds();
  r.stats = eng.Snapshot();
  if (export_reg != nullptr) eng.ExportMetrics(export_reg);
  return r;
}

/// Multi-core scaling arm: 8 clients, each hammering its own store (the
/// stores all share one sketch), at an explicit shard count. With one
/// store per client the engine can spread the stores across shards, so
/// this measures dispatcher scaling rather than single-key batching.
RunResult RunMultiCore(const SketchStore* store,
                       const QueryFunctionSpec& spec,
                       const std::vector<std::string>& datasets,
                       const std::vector<QueryInstance>& pool,
                       size_t clients, size_t num_shards) {
  ServeOptions opts;
  opts.max_batch = 512;
  opts.batch_window_us = 200.0;
  opts.num_shards = num_shards;
  ServeEngine eng(store, opts);
  Timer t;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string& dataset = datasets[c % datasets.size()];
      size_t done = 0;
      while (done < kPerClient) {
        const size_t n = std::min(kBurst, kPerClient - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(pool[(c * kPerClient + done + i) % pool.size()]);
        }
        eng.SubmitMany(dataset, spec, std::move(burst)).get();
        done += n;
      }
    });
  }
  for (auto& th : threads) th.join();
  RunResult r;
  r.mode = "multi_core";
  r.clients = clients;
  r.window_us = opts.batch_window_us;
  r.max_batch = opts.max_batch;
  r.shards = eng.num_shards();
  r.qps = static_cast<double>(clients * kPerClient) / t.ElapsedSeconds();
  r.stats = eng.Snapshot();
  return r;
}

/// Zipfian skewed-load arm: per-store traffic drawn Zipf(s) over
/// `datasets` (store 0 hottest), every client sampling independently.
/// Skew concentrates load on one store -> one shard, so this is the
/// worst case for shard balance and the tail the per-shard metrics
/// exist to explain.
struct ZipfReport {
  double s = 0.99;
  size_t stores = 0;
  size_t clients = 0;
  double qps = 0.0;
  double hottest_share = 0.0;    // fraction of traffic on store 0
  double shard_imbalance = 0.0;  // hottest shard / mean shard load
  ServeStats stats;
};

ZipfReport RunZipfian(const SketchStore* store, const QueryFunctionSpec& spec,
                      const std::vector<std::string>& datasets,
                      const std::vector<QueryInstance>& pool, size_t clients,
                      double s) {
  // Cumulative Zipf weights: w_i = 1/(i+1)^s.
  std::vector<double> cum(datasets.size());
  double total = 0.0;
  for (size_t i = 0; i < datasets.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cum[i] = total;
  }
  for (double& c : cum) c /= total;

  ServeOptions opts;
  opts.max_batch = 512;
  opts.batch_window_us = 200.0;
  ServeEngine eng(store, opts);
  constexpr size_t kZipfBurst = 32;  // store re-drawn per burst
  Timer t;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * (c + 1);  // per-client LCG
      size_t done = 0;
      while (done < kPerClient) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const double u =
            static_cast<double>(rng >> 11) * (1.0 / 9007199254740992.0);
        const size_t pick =
            std::lower_bound(cum.begin(), cum.end(), u) - cum.begin();
        const size_t n = std::min(kZipfBurst, kPerClient - done);
        std::vector<QueryInstance> burst;
        burst.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          burst.push_back(pool[(c * kPerClient + done + i) % pool.size()]);
        }
        eng.SubmitMany(datasets[std::min(pick, datasets.size() - 1)], spec,
                       std::move(burst))
            .get();
        done += n;
      }
    });
  }
  for (auto& th : threads) th.join();

  ZipfReport z;
  z.s = s;
  z.stores = datasets.size();
  z.clients = clients;
  z.qps = static_cast<double>(clients * kPerClient) / t.ElapsedSeconds();
  z.stats = eng.Snapshot();
  const std::string hottest = datasets[0] + "/";
  uint64_t hot_shard = 0;
  for (const auto& sd : z.stats.per_shard) {
    hot_shard = std::max(hot_shard, sd.queries);
  }
  const double mean_shard =
      z.stats.per_shard.empty()
          ? 0.0
          : static_cast<double>(z.stats.queries) /
                static_cast<double>(z.stats.per_shard.size());
  z.shard_imbalance =
      mean_shard > 0.0 ? static_cast<double>(hot_shard) / mean_shard : 0.0;
  for (const auto& ss : z.stats.per_store) {
    if (ss.store.compare(0, hottest.size(), hottest) == 0) {
      z.hottest_share = z.stats.queries > 0
                            ? static_cast<double>(ss.queries) /
                                  static_cast<double>(z.stats.queries)
                            : 0.0;
    }
  }
  return z;
}

// ---------------------------------------------------------------------------
// Paged-catalog arm: disk-resident cold sketches under a resident budget.
//
// 256 copies of one small trained sketch are packed into a single paged
// catalog file under distinct query-function keys, then served through
// the engine at 25% / 50% / 100% of the fully-resident footprint and
// compared against a baseline store holding all 256 in memory. Every
// answer in every run is compared bit-for-bit against the sketch's own
// fully-resident output — the paging layer must never perturb a bit —
// and the pool's peak residency must stay within budget. Both properties
// land in the json for tools/check_resident_budget.sh to gate.

constexpr size_t kPagedSketches = 256;

struct PagedBudgetRow {
  double budget_fraction = 0.0;
  size_t budget_bytes = 0;
  double qps = 0.0;
  double faultin_p50_us = 0.0;
  double faultin_p99_us = 0.0;
  BufferPoolStats pool;
  bool answers_match = false;
};

struct PagedCatalogReport {
  bool ran = false;
  size_t sketches = 0;
  size_t image_bytes_per_sketch = 0;     // on-disk (serialized) size
  size_t resident_bytes_per_sketch = 0;  // warm (faulted-in) footprint
  double fully_resident_qps = 0.0;
  bool baseline_answers_match = false;
  std::vector<PagedBudgetRow> rows;
};

PagedCatalogReport RunPagedCatalog(const std::string& out_path) {
  PagedCatalogReport rep;

  // A small COUNT sketch on a synthetic table: fault-ins stay cheap
  // enough that the 25%-budget run (every pass mostly cold) finishes in
  // seconds, while the evict -> reload -> recompile path is exercised
  // exactly as it would be for a production-size sketch.
  Table table = MakeUniformTable(4000, 2, 909);
  ExactEngine engine(&table);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = 910;
  WorkloadGenerator gen(2, wc);
  const std::vector<QueryInstance> train_q =
      gen.GenerateMany(500, &engine, &spec);
  const std::vector<double> train_a = engine.AnswerBatch(spec, train_q);
  WorkloadConfig pc = wc;
  pc.seed = 913;
  WorkloadGenerator pgen(2, pc);
  const std::vector<QueryInstance> raw_probes =
      pgen.GenerateMany(160, &engine, &spec);

  NeuroSketchConfig cfg;
  cfg.tree_height = 1;
  cfg.target_partitions = 1;
  cfg.n_layers = 2;
  cfg.l_first = 8;
  cfg.l_rest = 8;
  cfg.train.epochs = 10;
  cfg.seed = 911;
  auto sk = NeuroSketch::Train(train_q, train_a, cfg);
  if (!sk.ok()) {
    std::fprintf(stderr, "paged_catalog train: %s\n",
                 sk.status().ToString().c_str());
    return rep;
  }
  auto shared = std::make_shared<const NeuroSketch>(std::move(sk).value());

  // Keep only probes the sketch genuinely answers: a NaN answer would be
  // repaired by the exact engine on the serve path, which would make the
  // bit-identity comparison test the fallback rather than the pager.
  std::vector<QueryInstance> probes;
  std::vector<double> reference;
  const std::vector<double> all = shared->AnswerBatch(raw_probes);
  for (size_t i = 0; i < all.size(); ++i) {
    if (std::isnan(all[i])) continue;
    probes.push_back(raw_probes[i]);
    reference.push_back(all[i]);
  }
  if (probes.size() < 32) {
    std::fprintf(stderr, "paged_catalog: only %zu usable probes\n",
                 probes.size());
    return rep;
  }

  auto key_for = [](size_t i) {
    QueryFunctionKey key;
    key.predicate_name = AxisRangePredicate::Make()->name();
    key.agg = Aggregate::kCount;
    key.measure_col = i;  // distinct measure columns make distinct keys
    return key;
  };
  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
      entries;
  for (size_t i = 0; i < kPagedSketches; ++i) {
    entries.emplace_back(key_for(i), shared);
  }
  const std::string cat_path = out_path + ".paged.cat";
  Status pack = WritePagedCatalog(cat_path, entries);
  if (!pack.ok()) {
    std::fprintf(stderr, "paged_catalog pack: %s\n", pack.ToString().c_str());
    return rep;
  }

  // Budget in units of what a faulted-in sketch ACTUALLY occupies (the
  // warm footprint), probed by loading one entry back.
  auto probe_reader = PagedCatalogReader::Open(cat_path);
  if (!probe_reader.ok()) return rep;
  auto probe =
      probe_reader.value().LoadEntry(probe_reader.value().entries().front());
  if (!probe.ok()) return rep;
  rep.sketches = kPagedSketches;
  rep.image_bytes_per_sketch = shared->SizeBytes();
  rep.resident_bytes_per_sketch = probe.value().ResidentBytes();

  // Steady-state drive: 4 clients sweep all keys in 16-query bursts,
  // staggered so their working sets overlap but do not march in
  // lockstep, each comparing every answer against the reference bits.
  constexpr size_t kClients = 4, kPasses = 2, kBurstQ = 16;
  auto drive = [&](SketchStore* store, std::atomic<size_t>* mismatches) {
    ServeOptions opts;
    opts.max_batch = 512;
    opts.batch_window_us = 0.0;
    ServeEngine eng(store, opts);
    Timer t;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t pass = 0; pass < kPasses; ++pass) {
          for (size_t k = 0; k < kPagedSketches; ++k) {
            const size_t key_i = (k + c * 64) % kPagedSketches;
            QueryFunctionSpec key_spec = spec;
            key_spec.measure_col = key_i;
            const size_t off = (pass * 31 + k) % (probes.size() - kBurstQ);
            std::vector<QueryInstance> burst(
                probes.begin() + off, probes.begin() + off + kBurstQ);
            auto results =
                eng.SubmitMany("paged", key_spec, std::move(burst)).get();
            for (size_t j = 0; j < results.size(); ++j) {
              if (std::memcmp(&results[j].value, &reference[off + j],
                              sizeof(double)) != 0) {
                mismatches->fetch_add(1);
              }
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    return static_cast<double>(kClients * kPasses * kPagedSketches * kBurstQ) /
           t.ElapsedSeconds();
  };

  // Fully-resident baseline: all 256 registered in memory, no pool.
  {
    SketchStore store;
    (void)store.RegisterDataset("paged", &engine);
    for (size_t i = 0; i < kPagedSketches; ++i) {
      QueryFunctionSpec key_spec = spec;
      key_spec.measure_col = i;
      (void)store.Register("paged", key_spec, shared);
    }
    std::atomic<size_t> mismatches{0};
    rep.fully_resident_qps = drive(&store, &mismatches);
    rep.baseline_answers_match = mismatches.load() == 0;
  }

  // Paged runs: same catalog, same drive, shrinking resident budget.
  for (double frac : {1.0, 0.5, 0.25}) {
    SketchStore store;
    (void)store.RegisterDataset("paged", &engine);
    serve::PagedCatalogOptions opts;
    opts.max_resident_bytes = static_cast<size_t>(
        frac *
        static_cast<double>(rep.resident_bytes_per_sketch * kPagedSketches));
    auto attached = store.AttachPagedCatalog("paged", cat_path, opts);
    if (!attached.ok()) {
      std::fprintf(stderr, "paged_catalog attach: %s\n",
                   attached.status().ToString().c_str());
      std::remove(cat_path.c_str());
      return rep;
    }
    PagedBudgetRow row;
    row.budget_fraction = frac;
    row.budget_bytes = opts.max_resident_bytes;
    std::atomic<size_t> mismatches{0};
    row.qps = drive(&store, &mismatches);
    row.answers_match = mismatches.load() == 0;
    row.pool = store.PagedStats();
    if (const metrics::LogHistogram* h = store.FaultinLatency()) {
      row.faultin_p50_us = h->PercentileUs(50);
      row.faultin_p99_us = h->PercentileUs(99);
    }
    rep.rows.push_back(row);
  }
  std::remove(cat_path.c_str());
  rep.ran = true;
  return rep;
}

// ---------------------------------------------------------------------
// Streaming arm: serving under live appends + drift-driven refresh.

struct StreamingReport {
  bool ran = false;
  size_t total_leaves = 0;
  size_t delta_rows = 0;            // drift rows appended during the run
  double policy_max_normalized_mae = 0.0;
  double baseline_normalized_mae = 0.0;  // fresh sketch vs base table
  /// Refresh OFF endpoint: the stale sketch probed against the appended
  /// (base + delta) truth — the error refresh exists to repair. Note the
  /// SERVED answers stay exact throughout (delta composition); this is
  /// the raw model drift.
  double drifted_normalized_mae = 0.0;
  /// Refresh ON endpoint: probe MAE once the controller has converged.
  double post_refresh_normalized_mae = 0.0;
  double refresh_lag_ms = 0.0;  // load end -> drift back within bound
  double qps_refresh_off = 0.0;
  double qps_refresh_on = 0.0;
  double p50_off_us = 0.0, p99_off_us = 0.0;
  double p50_on_us = 0.0, p99_on_us = 0.0;
  bool answers_match_off = false;
  bool answers_match_on = false;
  bool full_rebuild = true;  // did any swap retrain every leaf?
  RefreshStats refresh;
  uint64_t delta_corrected_on = 0;  // sketch+correction answers, ON arm
  uint64_t delta_exact_on = 0;
};

constexpr size_t kStreamClients = 4;
constexpr size_t kStreamPerClient = 4000;

/// Mirrors the drift scenario proven in tests/streaming_test.cc: a GMM
/// base table, a COUNT sketch, and a smooth Gaussian drift cloud confined
/// to ONE kd-tree leaf (reject-sampled against the other leaves' probe
/// boxes, sized so the added match mass is 3x the baseline truth mass —
/// post-drift probe MAE >= 0.75 against the 0.5 policy bound by
/// construction). Two serving runs under live appends of that cloud:
/// refresh OFF (drift accumulates; answers stay exact via delta
/// composition) and refresh ON (the controller flags the drifted leaf,
/// retrains only it, and swaps). Both runs end with a quiescent
/// bit-identity check of every served answer against the composition
/// contract recomputed from the store's own served view.
StreamingReport RunStreaming() {
  StreamingReport rep;

  Dataset ds = MakeGmmDataset(1500, 3, 3, /*seed=*/91);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  ExactEngine engine(&base);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = ds.measure_col;

  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 4;
  cfg.n_layers = 4;
  cfg.l_first = 32;
  cfg.l_rest = 16;
  cfg.train.epochs = 150;

  WorkloadConfig wc;
  wc.num_active = 3;
  wc.range_frac_lo = 0.3;
  wc.range_frac_hi = 0.6;
  wc.seed = 17;
  WorkloadGenerator gen(base.num_columns(), wc);
  const std::vector<QueryInstance> train_q =
      gen.GenerateMany(800, &engine, &spec);
  auto trained =
      NeuroSketch::Train(train_q, engine.AnswerBatch(spec, train_q), cfg);
  if (!trained.ok()) {
    std::fprintf(stderr, "streaming train: %s\n",
                 trained.status().ToString().c_str());
    return rep;
  }
  auto shared =
      std::make_shared<const NeuroSketch>(std::move(trained).value());
  rep.total_leaves = shared->num_partitions();

  WorkloadConfig pc = wc;
  pc.seed = 29;
  WorkloadGenerator pgen(base.num_columns(), pc);
  const std::vector<QueryInstance> probes =
      pgen.GenerateMany(120, &engine, &spec);

  // Route the probes; the best-covered leaf is the drift target.
  std::map<int, std::vector<size_t>> by_leaf;
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto* leaf = shared->tree().Route(probes[i]);
    if (leaf != nullptr) by_leaf[leaf->leaf_id].push_back(i);
  }
  int target_leaf = -1;
  for (const auto& [id, members] : by_leaf) {
    if (target_leaf < 0 || members.size() > by_leaf[target_leaf].size()) {
      target_leaf = id;
    }
  }
  if (target_leaf < 0 || by_leaf[target_leaf].size() < 3) {
    std::fprintf(stderr, "streaming: no probe-covered leaf to drift\n");
    return rep;
  }

  DriftPolicy policy;
  policy.max_normalized_mae = 0.5;
  policy.min_probes = 10;
  policy.min_leaf_probes = 3;
  rep.policy_max_normalized_mae = policy.max_normalized_mae;
  const std::vector<double> base_truth = engine.AnswerBatch(spec, probes);
  rep.baseline_normalized_mae = DriftMonitor(spec, probes, policy)
                                    .CheckAgainst(*shared, base_truth)
                                    .normalized_mae;

  // Drift cloud (see tests/streaming_test.cc for the derivation).
  double truth_mass = 0.0;
  for (double t : base_truth) {
    if (!std::isnan(t)) truth_mass += std::abs(t);
  }
  const size_t d = base.num_columns();
  auto clean_of_other_leaves = [&](const std::vector<double>& row) {
    for (const auto& [id, members] : by_leaf) {
      if (id == target_leaf) continue;
      for (const size_t oi : members) {
        if (spec.predicate->Matches(probes[oi], row.data(), d)) return false;
      }
    }
    return true;
  };
  std::vector<std::vector<double>> centers;
  for (const size_t pi : by_leaf[target_leaf]) {
    const QueryInstance& p = probes[pi];
    std::vector<double> row(d);
    for (size_t c = 0; c < d; ++c) {
      row[c] = std::clamp(p.q[c] + 0.5 * p.q[d + c], 0.0, 1.0);
    }
    if (clean_of_other_leaves(row)) centers.push_back(std::move(row));
    if (centers.size() >= 3) break;
  }
  if (centers.empty()) {
    std::fprintf(stderr, "streaming: no isolatable drift center\n");
    return rep;
  }
  std::vector<std::vector<double>> drift_rows;
  Rng noise(777);
  double added_mass = 0.0;
  const double goal = 3.0 * std::max(truth_mass, 1.0);
  for (size_t iter = 0; added_mass < goal && iter < 2000000; ++iter) {
    const std::vector<double>& center = centers[iter % centers.size()];
    std::vector<double> row(d);
    for (size_t c = 0; c < d; ++c) {
      row[c] = std::clamp(center[c] + noise.Normal(0.0, 0.08), 0.0, 1.0);
    }
    if (!clean_of_other_leaves(row)) continue;
    size_t matched = 0;
    for (const size_t pi : by_leaf[target_leaf]) {
      if (spec.predicate->Matches(probes[pi], row.data(), d)) ++matched;
    }
    if (matched == 0) continue;
    added_mass += static_cast<double>(matched);
    drift_rows.push_back(std::move(row));
  }
  if (added_mass < goal) {
    std::fprintf(stderr, "streaming: drift cloud under-massed\n");
    return rep;
  }
  rep.delta_rows = drift_rows.size();

  // The appended ground truth both arms are measured against.
  Table merged = base;
  for (const auto& r : drift_rows) (void)merged.AppendRow(r);
  const ExactEngine merged_engine(&merged);
  const std::vector<double> merged_truth =
      merged_engine.AnswerBatch(spec, probes, 0);

  // Load: kStreamClients clients hammer the store while one appender
  // streams the drift cloud in, 256 rows per append call.
  auto load = [&](ServeEngine* eng, SketchStore* st) {
    Timer t;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kStreamClients; ++c) {
      clients.emplace_back([&, c] {
        size_t done = 0;
        while (done < kStreamPerClient) {
          const size_t n = std::min(kBurst, kStreamPerClient - done);
          std::vector<QueryInstance> burst;
          burst.reserve(n);
          for (size_t i = 0; i < n; ++i) {
            burst.push_back(
                probes[(c * kStreamPerClient + done + i) % probes.size()]);
          }
          eng->SubmitMany("stream", spec, std::move(burst)).get();
          done += n;
        }
      });
    }
    std::thread appender([&] {
      for (size_t i = 0; i < drift_rows.size(); i += 256) {
        const size_t n = std::min<size_t>(256, drift_rows.size() - i);
        std::vector<std::vector<double>> chunk(drift_rows.begin() + i,
                                               drift_rows.begin() + i + n);
        (void)st->AppendRows("stream", chunk);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (auto& th : clients) th.join();
    appender.join();
    return static_cast<double>(kStreamClients * kStreamPerClient) /
           t.ElapsedSeconds();
  };

  // Quiescent bit-identity check: every served answer must equal the
  // composition contract recomputed from the store's own served view —
  // sketch answer + exact count of UNFOLDED delta rows (those at or past
  // the answering leaf's fold watermark), or the merged exact answer
  // where the sketch returns NaN (the repaired path).
  auto answers_match = [&](ServeEngine* eng, SketchStore* st) {
    const serve::ServedView view =
        st->LookupServed(ServeKey::From("stream", spec));
    if (view.sketch == nullptr || view.delta == nullptr) return false;
    DeltaBuffer::Snapshot snap = view.delta->Snap();
    size_t mismatches = 0;
    for (const QueryInstance& q : probes) {
      const double sk = view.sketch->Answer(q);
      double expected;
      if (std::isnan(sk)) {
        expected = merged_engine.Answer(spec, q);
      } else {
        uint64_t wm = 0;
        const auto* leaf = view.sketch->tree().Route(q);
        if (leaf != nullptr && view.leaf_folded != nullptr &&
            static_cast<size_t>(leaf->leaf_id) < view.leaf_folded->size()) {
          wm = (*view.leaf_folded)[static_cast<size_t>(leaf->leaf_id)];
        }
        size_t matched = 0;
        snap.ForEachRow(std::max<size_t>(wm, snap.begin()), snap.end(),
                        [&](const double* r) {
                          if (spec.predicate->Matches(q, r, d)) ++matched;
                        });
        expected = sk + static_cast<double>(matched);
      }
      const double got = eng->Submit("stream", spec, q).get().value;
      if (std::memcmp(&got, &expected, sizeof(double)) != 0) ++mismatches;
    }
    return mismatches == 0;
  };

  ServeOptions sopts;
  sopts.max_batch = 512;
  sopts.batch_window_us = 100.0;

  // Refresh OFF: drift accumulates in the sketch; serving stays exact
  // only because the delta composition corrects every answer.
  {
    SketchStore st;
    (void)st.RegisterDataset("stream", &engine);
    (void)st.Register("stream", spec, shared);
    Status en = st.EnableStreaming("stream", base.num_columns());
    if (!en.ok()) {
      std::fprintf(stderr, "streaming: %s\n", en.ToString().c_str());
      return rep;
    }
    ServeEngine eng(&st, sopts);
    rep.qps_refresh_off = load(&eng, &st);
    const ServeStats ss = eng.Snapshot();
    rep.p50_off_us = ss.p50_us;
    rep.p99_off_us = ss.p99_us;
    rep.answers_match_off = answers_match(&eng, &st);
    const auto stale = st.Lookup(ServeKey::From("stream", spec));
    if (stale != nullptr) {
      rep.drifted_normalized_mae = DriftMonitor(spec, probes, policy)
                                       .CheckAgainst(*stale, merged_truth)
                                       .normalized_mae;
    }
  }

  // Refresh ON: same load, with the controller probing every 25ms and
  // swapping a partially-retrained sketch when the target leaf drifts
  // out of bound.
  {
    SketchStore st;
    (void)st.RegisterDataset("stream", &engine);
    (void)st.Register("stream", spec, shared);
    if (!st.EnableStreaming("stream", base.num_columns()).ok()) return rep;
    RefreshOptions ro;
    ro.interval_ms = 25;
    ro.probe_threads = 0;  // hardware concurrency
    ro.max_failures_before_demote = 0;
    RefreshController ctrl(&st, nullptr, ro);
    std::vector<QueryInstance> retrain_q = train_q;
    retrain_q.insert(retrain_q.end(), probes.begin(), probes.end());
    ctrl.AddTarget(RefreshTarget{
        "stream", DriftMonitor(spec, probes, policy), cfg, retrain_q});
    ctrl.Start();
    ServeEngine eng(&st, sopts);
    rep.qps_refresh_on = load(&eng, &st);
    {
      const ServeStats ss = eng.Snapshot();
      rep.p50_on_us = ss.p50_us;
      rep.p99_on_us = ss.p99_us;
    }

    // Convergence lag: from load end until a refresh pass finds (or
    // restores) drift within the policy bound.
    Timer lag;
    double final_mae = policy.max_normalized_mae + 1.0;
    for (int i = 0; i < 8; ++i) {
      auto out = ctrl.RefreshNow("stream", spec);
      if (!out.ok()) break;
      final_mae =
          out.value().retrained ? out.value().post_mae : out.value().pre_mae;
      if (!out.value().failed && final_mae <= policy.max_normalized_mae) {
        break;
      }
    }
    rep.refresh_lag_ms = lag.ElapsedSeconds() * 1e3;
    ctrl.Stop();
    rep.post_refresh_normalized_mae = final_mae;
    rep.refresh = ctrl.Stats();
    // Every swap partial <=> cumulative retrained leaves < swaps * total.
    rep.full_rebuild =
        rep.refresh.swaps > 0 &&
        rep.refresh.retrained_leaves >= rep.refresh.swaps * rep.total_leaves;
    rep.answers_match_on = answers_match(&eng, &st);
    const ServeStats ss = eng.Snapshot();
    rep.delta_corrected_on = ss.delta_corrected_answers;
    rep.delta_exact_on = ss.delta_exact_answers;
  }

  rep.ran = true;
  return rep;
}

// ---------------------------------------------------------------------------
// Compaction arm: sustained appends with the delta folded into a swappable
// base table. Two modes over an exact-only streaming dataset (no sketch
// registered, so the safe fold watermark is the full delta): refresh OFF
// calls SketchStore::Compact explicitly whenever the resident delta crosses
// the row threshold; refresh ON leaves folding to the RefreshController's
// sweep (compact_min_rows policy, no targets). Both modes sample served
// answers mid-run for all seven aggregates and require them bit-identical
// to a from-scratch scan of base + every row appended so far — across
// however many base-table swaps compaction performed. The CI gate
// (tools/check_streaming_freshness.sh) requires >= 1 compaction,
// trimmed_rows > 0, answers_match, and the resident delta bounded by the
// policy threshold instead of growing with the append history.

struct CompactionModeReport {
  uint64_t compactions = 0;   // store counter: Compact calls that folded
  uint64_t folded_rows = 0;   // store counter: rows folded into the table
  uint64_t trimmed_rows = 0;  // delta counter: rows dropped after folding
  size_t peak_delta_rows = 0;   // max resident rows observed during the run
  size_t final_delta_rows = 0;  // resident rows once the run quiesced
  size_t final_delta_bytes = 0;
  uint64_t table_folded = 0;  // streaming-table fold watermark at the end
  bool delta_bounded = false;
  bool answers_match = false;
  size_t sampled_answers = 0;
  double wall_seconds = 0.0;
};

struct CompactionReport {
  bool ran = false;
  size_t chunk_rows = 0;
  size_t compact_min_rows = 0;
  size_t append_rows = 0;
  CompactionModeReport off, on;
};

CompactionReport RunCompaction() {
  CompactionReport rep;
  rep.chunk_rows = 64;
  rep.compact_min_rows = 512;
  constexpr size_t kAppendRows = 6000;
  constexpr size_t kBatchRows = 128;
  rep.append_rows = kAppendRows;

  Dataset ds = MakeGmmDataset(1200, 3, 3, /*seed=*/51);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const size_t d = base.num_columns();

  // Append stream: jittered copies of base rows, clamped to the unit cube.
  Rng rng(4242);
  std::vector<std::vector<double>> stream_rows;
  stream_rows.reserve(kAppendRows);
  for (size_t i = 0; i < kAppendRows; ++i) {
    const size_t src = rng.Index(base.num_rows());
    std::vector<double> row(d);
    for (size_t c = 0; c < d; ++c) {
      row[c] = std::clamp(base.at(src, c) + rng.Uniform(-0.1, 0.1), 0.0, 1.0);
    }
    stream_rows.push_back(std::move(row));
  }

  // One spec per aggregate, all sharing the probe set below.
  const Aggregate kAggs[] = {Aggregate::kCount, Aggregate::kSum,
                             Aggregate::kAvg,   Aggregate::kMin,
                             Aggregate::kMax,   Aggregate::kStd,
                             Aggregate::kMedian};
  std::vector<QueryFunctionSpec> specs;
  for (const Aggregate agg : kAggs) {
    QueryFunctionSpec s;
    s.predicate = AxisRangePredicate::Make();
    s.agg = agg;
    s.measure_col = ds.measure_col;
    specs.push_back(std::move(s));
  }
  ExactEngine base_engine(&base);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.3;
  wc.range_frac_hi = 0.7;
  wc.seed = 67;
  WorkloadGenerator gen(d, wc);
  const std::vector<QueryInstance> probes =
      gen.GenerateMany(4, &base_engine, &specs[0]);
  if (probes.empty()) {
    std::fprintf(stderr, "compaction: no probe queries\n");
    return rep;
  }

  ServeOptions sopts;
  sopts.max_batch = 256;
  sopts.batch_window_us = 50.0;

  auto run_mode = [&](bool refresh_on, CompactionModeReport* m) {
    StreamingTable table(base);
    ExactEngine engine(&table);
    SketchStore st;
    (void)st.RegisterDataset("hot", &engine);
    if (!st.EnableStreaming("hot", d, rep.chunk_rows).ok()) return false;
    if (!st.AttachStreamingTable("hot", &table).ok()) return false;
    ServeEngine serve(&st, sopts);
    std::unique_ptr<RefreshController> ctrl;
    if (refresh_on) {
      RefreshOptions ro;
      ro.interval_ms = 5;
      ro.compact_min_rows = rep.compact_min_rows;
      ctrl = std::make_unique<RefreshController>(&st, nullptr, ro);
      ctrl->Start();
    }

    Table mirror = base;  // from-scratch oracle: base + all appended rows
    size_t mismatches = 0;
    auto sample = [&] {
      const ExactEngine oracle(&mirror);
      for (const QueryFunctionSpec& s : specs) {
        for (const QueryInstance& q : probes) {
          const double expected = oracle.Answer(s, q);
          const double got = serve.Submit("hot", s, q).get().value;
          if (std::memcmp(&got, &expected, sizeof(double)) != 0) {
            ++mismatches;
          }
          ++m->sampled_answers;
        }
      }
    };

    Timer t;
    size_t batch_no = 0;
    for (size_t i = 0; i < kAppendRows; i += kBatchRows, ++batch_no) {
      const size_t n = std::min(kBatchRows, kAppendRows - i);
      std::vector<std::vector<double>> chunk(stream_rows.begin() + i,
                                             stream_rows.begin() + i + n);
      for (const auto& r : chunk) (void)mirror.AppendRow(r);
      if (!st.AppendRows("hot", chunk).ok()) return false;
      const auto dstats = st.DeltaStats();
      if (!dstats.empty()) {
        m->peak_delta_rows = std::max(m->peak_delta_rows,
                                      dstats.front().second.rows);
        if (!refresh_on &&
            dstats.front().second.rows >= rep.compact_min_rows) {
          if (!st.Compact("hot").ok()) return false;
        }
      }
      if (refresh_on) {
        // Pace the appends so the 5ms controller sweep interleaves with
        // the load instead of seeing one giant post-hoc delta.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      if (batch_no % 8 == 0) sample();
    }
    if (refresh_on) {
      // Quiesce: the controller owns folding — wait for its sweep to pull
      // the resident delta back under the policy threshold.
      for (int spin = 0; spin < 600; ++spin) {
        const auto dstats = st.DeltaStats();
        const auto cstats = st.CompactionStats();
        const bool drained =
            !dstats.empty() && dstats.front().second.rows < rep.compact_min_rows &&
            !cstats.empty() && cstats.front().second.compactions > 0;
        if (drained) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      ctrl->Stop();
    } else {
      // Fold the sub-threshold tail so both modes end quiesced.
      if (!st.Compact("hot").ok()) return false;
    }
    sample();
    m->wall_seconds = t.ElapsedSeconds();

    const auto cstats = st.CompactionStats();
    if (!cstats.empty()) {
      m->compactions = cstats.front().second.compactions;
      m->folded_rows = cstats.front().second.folded_rows;
    }
    const auto dstats = st.DeltaStats();
    if (!dstats.empty()) {
      m->trimmed_rows = dstats.front().second.trimmed_rows;
      m->final_delta_rows = dstats.front().second.rows;
      m->final_delta_bytes = dstats.front().second.bytes;
      m->peak_delta_rows =
          std::max(m->peak_delta_rows, dstats.front().second.rows);
    }
    m->table_folded = table.folded();
    m->answers_match = mismatches == 0;
    // Bounded: the quiesced delta sits under the policy threshold (plus one
    // chunk of trim granularity) and the buffer never held the full append
    // history at once.
    m->delta_bounded =
        m->final_delta_rows <= rep.compact_min_rows + rep.chunk_rows &&
        m->peak_delta_rows < kAppendRows;
    return true;
  };

  if (!run_mode(false, &rep.off)) {
    std::fprintf(stderr, "compaction: refresh-off mode failed\n");
    return rep;
  }
  if (!run_mode(true, &rep.on)) {
    std::fprintf(stderr, "compaction: refresh-on mode failed\n");
    return rep;
  }
  rep.ran = true;
  return rep;
}

void PrintRow(const RunResult& r) {
  std::printf("%-12s %8zu %10.0f %10zu %7zu %12.0f %9.0f %9.0f %9.0f %9.0f "
              "%11.1f\n",
              r.mode.c_str(), r.clients, r.window_us, r.max_batch, r.shards,
              r.qps, r.stats.p50_us, r.stats.p95_us, r.stats.p99_us,
              r.stats.p999_us, r.stats.mean_batch_size);
}

/// Tracing on/off single-query serve p50s, measured as a paired design.
///
/// One client, submit one, wait, repeat — no burst, so no queueing
/// amplification (in a 128-deep burst the p50 request waits behind ~64
/// predecessors and every nanosecond of per-request dispatcher work is
/// paid ~64x in measured latency).
///
/// Three defenses against noise drowning a sub-100ns true difference:
///  - Both engines live for the whole measurement and small submission
///    chunks alternate between them (order flipped every round), so
///    slow machine-wide drift — frequency scaling, noisy neighbors —
///    lands on both arms nearly equally instead of biasing whichever
///    arm a drift window happened to cover.
///  - Each round-trip is timed individually and the exact pooled-sample
///    median is taken via nth_element rather than the engine's own p50:
///    the engine histogram is log-bucketed (~19% bucket width) and this
///    path's p50 sits right at a bucket edge (~2us), so a
///    nanosecond-scale true shift can read as a whole-bucket jump in
///    the interpolated value.
///  - Timing the round-trip charges the client for dispatcher tail work
///    it actually waits behind on saturated hosts, which the internal
///    enqueue->fulfill window misses.
struct TracingOverheadSample {
  double on_p50_us = 0.0;
  double off_p50_us = 0.0;
  double overhead_pct() const {
    return off_p50_us > 0.0 ? (on_p50_us - off_p50_us) / off_p50_us * 100.0
                            : 0.0;
  }
};

TracingOverheadSample MeasureTracingOverhead(
    const SketchStore* store, const QueryFunctionSpec& spec,
    const std::vector<QueryInstance>& pool) {
  ServeOptions opts;
  opts.max_batch = 1;
  opts.batch_window_us = 0.0;
  opts.stage_tracing = true;
  ServeEngine eng_on(store, opts);
  opts.stage_tracing = false;
  ServeEngine eng_off(store, opts);

  using SteadyClock = std::chrono::steady_clock;
  constexpr size_t kWarm = 500, kChunk = 250, kRounds = 40;
  std::vector<double> on_us, off_us;
  on_us.reserve(kChunk * kRounds);
  off_us.reserve(kChunk * kRounds);
  size_t qi = 0;
  auto run_chunk = [&](ServeEngine* eng, std::vector<double>* out) {
    for (size_t i = 0; i < kChunk; ++i) {
      const QueryInstance& q = pool[qi++ % pool.size()];
      const auto t0 = SteadyClock::now();
      eng->Submit("bench", spec, q).get();
      const auto t1 = SteadyClock::now();
      out->push_back(std::chrono::duration<double, std::micro>(t1 - t0)
                         .count());
    }
  };
  for (size_t i = 0; i < kWarm; ++i) {
    eng_on.Submit("bench", spec, pool[i % pool.size()]).get();
    eng_off.Submit("bench", spec, pool[i % pool.size()]).get();
  }
  for (size_t round = 0; round < kRounds; ++round) {
    if (round % 2 == 0) {
      run_chunk(&eng_on, &on_us);
      run_chunk(&eng_off, &off_us);
    } else {
      run_chunk(&eng_off, &off_us);
      run_chunk(&eng_on, &on_us);
    }
  }
  auto median = [](std::vector<double>* v) {
    std::nth_element(v->begin(), v->begin() + v->size() / 2, v->end());
    return (*v)[v->size() / 2];
  };
  TracingOverheadSample s;
  s.on_p50_us = median(&on_us);
  s.off_p50_us = median(&off_us);
  return s;
}

/// Observability sections for the json snapshot: the headline run's stage
/// breakdown + per-store stats, the tracing on/off overhead on the
/// single-query serve path, and the registry document (build + serve).
struct ObservabilityReport {
  ServeStats headline;
  double tracing_on_p50_us = 0.0;
  double tracing_off_p50_us = 0.0;
  double overhead_pct = 0.0;
  std::string metrics_json;
};

/// Narrow-tier (f32 / int8) record for the json snapshot.
struct TierReport {
  bool active = false;
  double max_divergence = 0.0;
  double error_bound = 0.0;
  size_t plan_bytes_f64 = 0;
  size_t plan_bytes = 0;
  LatencyNs latency;
  double micro_batch_qps8 = 0.0;
  uint64_t tier_answers = 0;
};

/// Vectorized-batch throughput per tier (AnswerBatchVectorizedTo on
/// kBatchRows-query batches, float-marshalled gather for narrow tiers),
/// in million queries/second.
struct BatchedRow {
  const char* tier = "";
  double mqps = 0.0;
};

constexpr size_t kBatchRows = 512;

double MeasureBatchedMqps(const NeuroSketch& ns,
                          const std::vector<QueryInstance>& pool) {
  std::vector<QueryInstance> batch(pool.begin(),
                                   pool.begin() + std::min(kBatchRows,
                                                           pool.size()));
  std::vector<double> out(batch.size());
  constexpr size_t kWarmup = 20, kReps = 400;
  for (size_t i = 0; i < kWarmup; ++i) {
    ns.AnswerBatchVectorizedTo(batch, out.data());
  }
  Timer t;
  for (size_t i = 0; i < kReps; ++i) {
    ns.AnswerBatchVectorizedTo(batch, out.data());
  }
  const double seconds = t.ElapsedSeconds();
  return static_cast<double>(kReps * batch.size()) / seconds / 1e6;
}

void WriteBreakdown(FILE* f, const char* name,
                    const serve::LatencyBreakdown& b, const char* trailer) {
  std::fprintf(f,
               "    \"%s\": {\"count\": %llu, \"p50_us\": %.1f, "
               "\"p95_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
               name, static_cast<unsigned long long>(b.count), b.p50_us,
               b.p95_us, b.p99_us, b.p999_us, trailer);
}

Status WriteJson(const std::string& path, const std::vector<RunResult>& rows,
                 double per_query_qps8, double batched_qps8,
                 const LatencyNs& scalar, const LatencyNs& compiled,
                 const TierReport& f32, const TierReport& i8,
                 const std::vector<BatchedRow>& batched,
                 const ObservabilityReport& obs,
                 const std::vector<RunResult>& multi_core,
                 const ZipfReport& zipf, const PagedCatalogReport& paged,
                 const StreamingReport& streaming,
                 const CompactionReport& compaction) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fprintf(f, "{\n  \"bench\": \"serving_throughput\",\n");
  std::fprintf(f, "  \"dataset\": \"PM\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"queries_per_client\": %zu,\n", kPerClient);
  std::fprintf(f, "  \"client_burst\": %zu,\n", kBurst);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunResult& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"clients\": %zu, "
                 "\"batch_window_us\": %.0f, \"max_batch\": %zu, "
                 "\"shards\": %zu, "
                 "\"qps\": %.0f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
                 "\"p99_us\": %.1f, \"p999_us\": %.1f, \"mean_batch\": %.1f, "
                 "\"fallback_rate\": %.4f}%s\n",
                 r.mode.c_str(), r.clients, r.window_us, r.max_batch,
                 r.shards, r.qps,
                 r.stats.p50_us, r.stats.p95_us, r.stats.p99_us,
                 r.stats.p999_us, r.stats.mean_batch_size,
                 r.stats.fallback_rate, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"single_query\": {\n"
               "    \"scalar\": {\"p50_ns\": %.0f, \"p95_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n"
               "    \"compiled_plan\": {\"p50_ns\": %.0f, \"p95_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n"
               "    \"compiled_plan_f32\": {\"p50_ns\": %.0f, "
               "\"p95_ns\": %.0f, \"p99_ns\": %.0f},\n"
               "    \"compiled_plan_int8\": {\"p50_ns\": %.0f, "
               "\"p95_ns\": %.0f, \"p99_ns\": %.0f},\n"
               "    \"p50_speedup\": %.2f,\n"
               "    \"f32_p50_speedup_vs_f64_plan\": %.2f\n  },\n",
               scalar.p50, scalar.p95, scalar.p99, compiled.p50, compiled.p95,
               compiled.p99, f32.latency.p50, f32.latency.p95, f32.latency.p99,
               i8.latency.p50, i8.latency.p95, i8.latency.p99,
               compiled.p50 > 0.0 ? scalar.p50 / compiled.p50 : 0.0,
               f32.latency.p50 > 0.0 ? compiled.p50 / f32.latency.p50 : 0.0);
  std::fprintf(f,
               "  \"f32_tier\": {\"active\": %s, \"max_divergence\": %.3g, "
               "\"error_bound\": %.3g, \"plan_bytes_f64\": %zu, "
               "\"plan_bytes_f32\": %zu, \"micro_batch_qps_8c\": %.0f, "
               "\"f32_answers\": %llu},\n",
               f32.active ? "true" : "false", f32.max_divergence,
               f32.error_bound, f32.plan_bytes_f64, f32.plan_bytes,
               f32.micro_batch_qps8,
               static_cast<unsigned long long>(f32.tier_answers));
  std::fprintf(f,
               "  \"int8_tier\": {\"active\": %s, \"max_divergence\": %.3g, "
               "\"error_bound\": %.3g, \"plan_bytes_f64\": %zu, "
               "\"plan_bytes_int8\": %zu, \"micro_batch_qps_8c\": %.0f, "
               "\"int8_answers\": %llu},\n",
               i8.active ? "true" : "false", i8.max_divergence,
               i8.error_bound, i8.plan_bytes_f64, i8.plan_bytes,
               i8.micro_batch_qps8,
               static_cast<unsigned long long>(i8.tier_answers));
  std::fprintf(f, "  \"batched_vectorized\": {");
  for (size_t i = 0; i < batched.size(); ++i) {
    std::fprintf(f, "\"%s_mqps\": %.2f%s", batched[i].tier, batched[i].mqps,
                 i + 1 < batched.size() ? ", " : "");
  }
  std::fprintf(f, "},\n");
  // Stage attribution of the headline micro-batch run: queue counts
  // requests, the other stages count micro-batches.
  std::fprintf(f, "  \"stage_breakdown\": {\n");
  WriteBreakdown(f, "queue", obs.headline.stage_queue, ",");
  WriteBreakdown(f, "assembly", obs.headline.stage_assembly, ",");
  WriteBreakdown(f, "inference", obs.headline.stage_inference, ",");
  WriteBreakdown(f, "fulfill", obs.headline.stage_fulfill, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"per_store\": [\n");
  for (size_t i = 0; i < obs.headline.per_store.size(); ++i) {
    const auto& ss = obs.headline.per_store[i];
    std::fprintf(f,
                 "    {\"store\": \"%s\", \"queries\": %llu, "
                 "\"sketch_answers\": %llu, \"fallback_answers\": %llu, "
                 "\"failed_answers\": %llu, \"fallback_rate\": %.4f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                 ss.store.c_str(),
                 static_cast<unsigned long long>(ss.queries),
                 static_cast<unsigned long long>(ss.sketch_answers),
                 static_cast<unsigned long long>(ss.fallback_answers),
                 static_cast<unsigned long long>(ss.failed_answers),
                 ss.fallback_rate, ss.latency.p50_us, ss.latency.p99_us,
                 ss.latency.p999_us,
                 i + 1 < obs.headline.per_store.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"tracing_overhead\": {\"single_query_p50_on_us\": %.1f, "
               "\"single_query_p50_off_us\": %.1f, \"overhead_pct\": %.2f},\n",
               obs.tracing_on_p50_us, obs.tracing_off_p50_us,
               obs.overhead_pct);
  std::fprintf(f, "  \"metrics\": %s,\n", obs.metrics_json.c_str());
  // Shard scaling: micro-batch QPS with the same 8-client / 8-store load
  // at increasing shard counts. speedup_4_shards only means anything on
  // a >=4-core machine; check_serving_overhead.sh gates accordingly.
  double qps1 = 0.0, qps4 = 0.0;
  for (const RunResult& r : multi_core) {
    if (r.shards == 1) qps1 = r.qps;
    if (r.shards == 4) qps4 = r.qps;
  }
  std::fprintf(f, "  \"multi_core\": {\n");
  std::fprintf(f, "    \"clients\": 8,\n    \"stores\": 8,\n");
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < multi_core.size(); ++i) {
    const RunResult& r = multi_core[i];
    std::fprintf(f,
                 "      {\"shards\": %zu, \"qps\": %.0f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"mean_batch\": %.1f}%s\n",
                 r.shards, r.qps, r.stats.p50_us, r.stats.p99_us,
                 r.stats.mean_batch_size,
                 i + 1 < multi_core.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"speedup_4_shards\": %.2f\n  },\n",
               qps1 > 0.0 ? qps4 / qps1 : 0.0);
  std::fprintf(f,
               "  \"zipfian\": {\"s\": %.2f, \"stores\": %zu, "
               "\"clients\": %zu, \"qps\": %.0f, \"p50_us\": %.1f, "
               "\"p99_us\": %.1f, \"p999_us\": %.1f, "
               "\"hottest_store_share\": %.3f, "
               "\"shard_imbalance\": %.2f},\n",
               zipf.s, zipf.stores, zipf.clients, zipf.qps,
               zipf.stats.p50_us, zipf.stats.p99_us, zipf.stats.p999_us,
               zipf.hottest_share, zipf.shard_imbalance);
  // Paged-catalog arm: every row carries the two invariants the budget
  // gate script reads back — answers_match and peak <= budget.
  std::fprintf(f, "  \"paged_catalog\": {\n");
  std::fprintf(f,
               "    \"sketches\": %zu,\n"
               "    \"image_bytes_per_sketch\": %zu,\n"
               "    \"resident_bytes_per_sketch\": %zu,\n"
               "    \"fully_resident_qps\": %.0f,\n"
               "    \"baseline_answers_match\": %s,\n",
               paged.sketches, paged.image_bytes_per_sketch,
               paged.resident_bytes_per_sketch, paged.fully_resident_qps,
               paged.baseline_answers_match ? "true" : "false");
  std::fprintf(f, "    \"rows\": [\n");
  for (size_t i = 0; i < paged.rows.size(); ++i) {
    const PagedBudgetRow& r = paged.rows[i];
    std::fprintf(
        f,
        "      {\"budget_fraction\": %.2f, \"budget_bytes\": %zu, "
        "\"qps\": %.0f, \"qps_vs_resident\": %.3f, "
        "\"faultin_p50_us\": %.1f, \"faultin_p99_us\": %.1f, "
        "\"faultins\": %llu, \"hits\": %llu, \"evictions\": %llu, "
        "\"peak_resident_bytes\": %zu, \"answers_match\": %s}%s\n",
        r.budget_fraction, r.budget_bytes, r.qps,
        paged.fully_resident_qps > 0.0 ? r.qps / paged.fully_resident_qps
                                       : 0.0,
        r.faultin_p50_us, r.faultin_p99_us,
        static_cast<unsigned long long>(r.pool.faultins),
        static_cast<unsigned long long>(r.pool.hits),
        static_cast<unsigned long long>(r.pool.evictions),
        r.pool.peak_resident_bytes, r.answers_match ? "true" : "false",
        i + 1 < paged.rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  // Streaming arm: the freshness gate script reads post-refresh MAE vs
  // the policy bound, both answers_match flags, and full_rebuild.
  std::fprintf(
      f,
      "  \"streaming\": {\n"
      "    \"clients\": %zu,\n"
      "    \"delta_rows\": %zu,\n"
      "    \"total_leaves\": %zu,\n"
      "    \"policy_max_normalized_mae\": %.4f,\n"
      "    \"baseline_normalized_mae\": %.4f,\n"
      "    \"drifted_normalized_mae\": %.4f,\n"
      "    \"post_refresh_normalized_mae\": %.4f,\n"
      "    \"refresh_lag_ms\": %.1f,\n"
      "    \"refresh_runs\": %llu,\n"
      "    \"refresh_swaps\": %llu,\n"
      "    \"refresh_failures\": %llu,\n"
      "    \"retrained_leaves\": %llu,\n"
      "    \"full_rebuild\": %s,\n"
      "    \"delta_corrected_answers\": %llu,\n"
      "    \"delta_exact_answers\": %llu,\n"
      "    \"rows\": [\n"
      "      {\"mode\": \"refresh_off\", \"qps\": %.0f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"answers_match\": %s},\n"
      "      {\"mode\": \"refresh_on\", \"qps\": %.0f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"answers_match\": %s}\n"
      "    ]\n  },\n",
      kStreamClients, streaming.delta_rows, streaming.total_leaves,
      streaming.policy_max_normalized_mae, streaming.baseline_normalized_mae,
      streaming.drifted_normalized_mae,
      streaming.post_refresh_normalized_mae, streaming.refresh_lag_ms,
      static_cast<unsigned long long>(streaming.refresh.runs),
      static_cast<unsigned long long>(streaming.refresh.swaps),
      static_cast<unsigned long long>(streaming.refresh.failures),
      static_cast<unsigned long long>(streaming.refresh.retrained_leaves),
      streaming.full_rebuild ? "true" : "false",
      static_cast<unsigned long long>(streaming.delta_corrected_on),
      static_cast<unsigned long long>(streaming.delta_exact_on),
      streaming.qps_refresh_off, streaming.p50_off_us, streaming.p99_off_us,
      streaming.answers_match_off ? "true" : "false",
      streaming.qps_refresh_on, streaming.p50_on_us, streaming.p99_on_us,
      streaming.answers_match_on ? "true" : "false");
  // Compaction arm: the freshness gate's sustained-append leg reads
  // compactions, trimmed_rows, delta_bounded, and answers_match per mode.
  auto compaction_row = [&](const char* mode, const CompactionModeReport& m,
                            const char* trailer) {
    std::fprintf(
        f,
        "      {\"mode\": \"%s\", \"compactions\": %llu, "
        "\"folded_rows\": %llu, \"trimmed_rows\": %llu, "
        "\"table_folded\": %llu, \"peak_delta_rows\": %zu, "
        "\"final_delta_rows\": %zu, \"final_delta_bytes\": %zu, "
        "\"delta_bounded\": %s, \"answers_match\": %s, "
        "\"sampled_answers\": %zu, \"wall_seconds\": %.3f}%s\n",
        mode, static_cast<unsigned long long>(m.compactions),
        static_cast<unsigned long long>(m.folded_rows),
        static_cast<unsigned long long>(m.trimmed_rows),
        static_cast<unsigned long long>(m.table_folded), m.peak_delta_rows,
        m.final_delta_rows, m.final_delta_bytes,
        m.delta_bounded ? "true" : "false",
        m.answers_match ? "true" : "false", m.sampled_answers, m.wall_seconds,
        trailer);
  };
  std::fprintf(f,
               "  \"compaction\": {\n"
               "    \"chunk_rows\": %zu,\n"
               "    \"compact_min_rows\": %zu,\n"
               "    \"append_rows\": %zu,\n"
               "    \"rows\": [\n",
               compaction.chunk_rows, compaction.compact_min_rows,
               compaction.append_rows);
  compaction_row("refresh_off", compaction.off, ",");
  compaction_row("refresh_on", compaction.on, "");
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f,
               "  \"headline\": {\"clients\": 8, \"per_query_qps\": %.0f, "
               "\"micro_batch_qps\": %.0f, \"speedup\": %.2f}\n}\n",
               per_query_qps8, batched_qps8,
               per_query_qps8 > 0.0 ? batched_qps8 / per_query_qps8 : 0.0);
  std::fclose(f);
  return Status::OK();
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";

  PrintHeader("Serving throughput (serve/ subsystem)");
  std::printf("preparing PM dataset and training a sketch...\n");
  Workbench wb = MakeWorkbench(Prepare("PM"), Aggregate::kAvg,
                               DefaultWorkload("PM", 11), 2000, 4096);
  auto sketch = NeuroSketch::Train(wb.train_q, wb.train_a,
                                   DefaultSketchConfig());
  if (!sketch.ok()) {
    std::fprintf(stderr, "train: %s\n", sketch.status().ToString().c_str());
    return 1;
  }
  ExactEngine engine(&wb.data.normalized);
  SketchStore store;
  (void)store.RegisterDataset("bench", &engine);
  NeuroSketch& ns = sketch.value();

  // Pin the reference tier for the baseline sections: under
  // NEUROSKETCH_FORCE_F32_PLANS, Train comes back serving f32 and the
  // "compiled_plan" rows would silently measure the wrong tier.
  if (ns.has_f32_plans()) (void)ns.SelectPrecision(PlanPrecision::kF64);

  // Single-query forward-pass latency: Matrix-allocating scalar reference
  // vs the compiled flat-buffer plan (same routing, same bits out), then
  // the opt-in f32 tier (validated against the f64 reference first).
  std::printf("\nsingle-query latency (ns):\n%-18s %10s %10s %10s\n", "path",
              "p50", "p95", "p99");
  const LatencyNs scalar_lat = MeasureSingleQuery(
      wb.test_q, [&ns](const QueryInstance& q) { return ns.AnswerScalar(q); });
  const LatencyNs plan_lat = MeasureSingleQuery(
      wb.test_q, [&ns](const QueryInstance& q) { return ns.Answer(q); });

  TierReport f32;
  f32.error_bound = NeuroSketchConfig().f32_error_bound;
  f32.active = ns.EnableF32(wb.train_q, f32.error_bound);
  f32.max_divergence = ns.f32_max_divergence();
  f32.plan_bytes_f64 = ns.PlanBytes(PlanPrecision::kF64);
  f32.plan_bytes = ns.PlanBytes(PlanPrecision::kF32);
  LatencyNs f32_lat;
  const std::string f32_path = out_path + ".f32.sketch";
  if (f32.active) {
    // Answer now runs the f32 plans; persist the f32 sketch for the
    // serving run below, then flip this instance back to f64 so the
    // sweep keeps measuring the reference tier.
    f32_lat = MeasureSingleQuery(
        wb.test_q, [&ns](const QueryInstance& q) { return ns.Answer(q); });
    Status save_st = ns.Save(f32_path);
    if (!save_st.ok()) {
      std::fprintf(stderr, "warning: f32 sketch save failed (%s); the f32 "
                   "serving numbers will be zero\n",
                   save_st.ToString().c_str());
    }
  }
  f32.latency = f32_lat;

  // Int8 tier: calibrate + validate over the training workload (saved
  // after the f32 snapshot so that file stays int8-free), measure, then
  // pin the reference tier for the sweep.
  TierReport i8;
  i8.error_bound = NeuroSketchConfig().int8_error_bound;
  i8.active = ns.EnableInt8(wb.train_q, i8.error_bound);
  i8.max_divergence = ns.int8_max_divergence();
  i8.plan_bytes_f64 = ns.PlanBytes(PlanPrecision::kF64);
  i8.plan_bytes = ns.PlanBytes(PlanPrecision::kInt8);
  LatencyNs i8_lat;
  const std::string i8_path = out_path + ".int8.sketch";
  if (i8.active) {
    i8_lat = MeasureSingleQuery(
        wb.test_q, [&ns](const QueryInstance& q) { return ns.Answer(q); });
    Status save_st = ns.Save(i8_path);
    if (!save_st.ok()) {
      std::fprintf(stderr, "warning: int8 sketch save failed (%s); the int8 "
                   "serving numbers will be zero\n",
                   save_st.ToString().c_str());
    }
  }
  i8.latency = i8_lat;
  (void)ns.SelectPrecision(PlanPrecision::kF64);

  std::printf("%-18s %10.0f %10.0f %10.0f\n", "scalar", scalar_lat.p50,
              scalar_lat.p95, scalar_lat.p99);
  std::printf("%-18s %10.0f %10.0f %10.0f\n", "compiled_plan", plan_lat.p50,
              plan_lat.p95, plan_lat.p99);
  std::printf("%-18s %10.0f %10.0f %10.0f\n", "compiled_plan_f32",
              f32_lat.p50, f32_lat.p95, f32_lat.p99);
  std::printf("%-18s %10.0f %10.0f %10.0f\n", "compiled_plan_int8",
              i8_lat.p50, i8_lat.p95, i8_lat.p99);
  std::printf("p50 speedup: scalar/f64 %.2fx, f64/f32 %.2fx "
              "(f32 max divergence %.3g, bound %.3g, plan bytes %zu -> "
              "%zu)\n",
              plan_lat.p50 > 0.0 ? scalar_lat.p50 / plan_lat.p50 : 0.0,
              f32_lat.p50 > 0.0 ? plan_lat.p50 / f32_lat.p50 : 0.0,
              f32.max_divergence, f32.error_bound, f32.plan_bytes_f64,
              f32.plan_bytes);
  std::printf("int8 tier: %s (max divergence %.3g, bound %.3g, plan bytes "
              "%zu -> %zu = %.2fx smaller)\n",
              i8.active ? "active" : "fell back",
              i8.max_divergence, i8.error_bound, i8.plan_bytes_f64,
              i8.plan_bytes,
              i8.plan_bytes > 0
                  ? static_cast<double>(i8.plan_bytes_f64) /
                        static_cast<double>(i8.plan_bytes)
                  : 0.0);

  // Vectorized-batch throughput per tier: the float-marshalled gather
  // path for narrow tiers vs the f64 reference gather.
  std::vector<BatchedRow> batched;
  batched.push_back({"f64", MeasureBatchedMqps(ns, wb.test_q)});
  if (f32.active && ns.SelectPrecision(PlanPrecision::kF32).ok()) {
    batched.push_back({"f32", MeasureBatchedMqps(ns, wb.test_q)});
  }
  if (i8.active && ns.SelectPrecision(PlanPrecision::kInt8).ok()) {
    batched.push_back({"int8", MeasureBatchedMqps(ns, wb.test_q)});
  }
  (void)ns.SelectPrecision(PlanPrecision::kF64);
  std::printf("vectorized batch (%zu rows): ", kBatchRows);
  for (size_t i = 0; i < batched.size(); ++i) {
    std::printf("%s %.2f Mq/s%s", batched[i].tier, batched[i].mqps,
                i + 1 < batched.size() ? ", " : "\n\n");
  }

  // The registry document embedded in the json: build metrics of the
  // bench sketch (captured before it moves into the store) + the serve
  // metrics of the headline run, exported below.
  metrics::MetricsRegistry registry;
  ns.ExportBuildMetrics(&registry);
  (void)store.Register("bench", wb.spec, std::move(sketch).value());

  std::printf("%-12s %8s %10s %10s %7s %12s %9s %9s %9s %9s %11s\n", "mode",
              "clients", "window_us", "max_batch", "shards", "qps", "p50_us",
              "p95_us", "p99_us", "p999_us", "mean_batch");

  std::vector<RunResult> rows;
  ObservabilityReport obs;
  // Warm up allocator / page cache / ifunc dispatch once.
  (void)RunBatched(&store, wb.spec, wb.test_q, 2, 256, 200.0);

  double per_query_qps8 = 0.0, batched_qps8 = 0.0;
  for (size_t clients : {1, 2, 4, 8}) {
    RunResult pq = RunPerQuery(&store, wb.spec, wb.test_q, clients);
    PrintRow(pq);
    if (clients == 8) per_query_qps8 = pq.qps;
    rows.push_back(pq);
    for (double window : {0.0, 100.0, 200.0, 500.0}) {
      const bool headline = clients == 8 && window == 200.0;
      RunResult mb = RunBatched(&store, wb.spec, wb.test_q, clients, 512,
                                window, headline ? &registry : nullptr);
      PrintRow(mb);
      if (headline) {
        batched_qps8 = mb.qps;
        obs.headline = mb.stats;
      }
      rows.push_back(mb);
    }
  }
  obs.metrics_json = registry.Json();

  // Where does each headline microsecond go? Stage attribution of the
  // 8-client / 200us-window run.
  if (obs.headline.stage_tracing) {
    std::printf("\nheadline stage p50/p99 (us): queue %.0f/%.0f | assembly "
                "%.0f/%.0f | inference %.0f/%.0f | fulfill %.0f/%.0f\n",
                obs.headline.stage_queue.p50_us,
                obs.headline.stage_queue.p99_us,
                obs.headline.stage_assembly.p50_us,
                obs.headline.stage_assembly.p99_us,
                obs.headline.stage_inference.p50_us,
                obs.headline.stage_inference.p99_us,
                obs.headline.stage_fulfill.p50_us,
                obs.headline.stage_fulfill.p99_us);
  }

  // Stage-tracing overhead on the single-query serve path: tracing on vs
  // off in the same process as a chunk-alternating paired comparison
  // (see MeasureTracingOverhead). The paired run repeats 5 times and the
  // run with the median overhead is reported — a median across paired
  // runs rejects the occasional run where a scheduling-regime flip lands
  // between two chunks, without letting either tail define the result.
  std::vector<TracingOverheadSample> overhead_reps;
  for (int rep = 0; rep < 5; ++rep) {
    overhead_reps.push_back(MeasureTracingOverhead(&store, wb.spec,
                                                   wb.test_q));
  }
  std::sort(overhead_reps.begin(), overhead_reps.end(),
            [](const TracingOverheadSample& a, const TracingOverheadSample& b) {
              return a.overhead_pct() < b.overhead_pct();
            });
  const TracingOverheadSample& mid = overhead_reps[overhead_reps.size() / 2];
  obs.tracing_on_p50_us = mid.on_p50_us;
  obs.tracing_off_p50_us = mid.off_p50_us;
  obs.overhead_pct = mid.overhead_pct();
  std::printf("tracing overhead (single-query p50): on %.1f us vs off %.1f "
              "us = %.2f%%\n",
              obs.tracing_on_p50_us, obs.tracing_off_p50_us,
              obs.overhead_pct);

  const double speedup =
      per_query_qps8 > 0.0 ? batched_qps8 / per_query_qps8 : 0.0;
  std::printf("\nheadline: 8 clients, micro-batch (window 200us) vs "
              "per-query: %.2fx QPS (%.0f vs %.0f)\n",
              speedup, batched_qps8, per_query_qps8);

  // Shard scaling + skewed-load arms. Both need stores that can actually
  // land on different shards, so the bench sketch serves under several
  // dataset names (one registry entry each, all sharing the sketch).
  std::shared_ptr<const NeuroSketch> shared =
      store.Lookup(serve::ServeKey::From("bench", wb.spec));
  std::vector<RunResult> multi_core;
  ZipfReport zipf;
  if (shared != nullptr) {
    SketchStore fan_store;
    std::vector<std::string> fan_names;
    for (int i = 0; i < 8; ++i) {
      fan_names.push_back("mc" + std::to_string(i));
      (void)fan_store.RegisterDataset(fan_names.back(), &engine);
      (void)fan_store.Register(fan_names.back(), wb.spec, shared);
    }
    const size_t hw =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<size_t> shard_counts = {1, 2, 4};
    if (std::find(shard_counts.begin(), shard_counts.end(), hw) ==
        shard_counts.end()) {
      shard_counts.push_back(hw);
    }
    std::printf("\nmulti-core scaling (8 clients x 8 stores, micro-batch "
                "window 200us):\n");
    for (size_t n : shard_counts) {
      RunResult r =
          RunMultiCore(&fan_store, wb.spec, fan_names, wb.test_q, 8, n);
      PrintRow(r);
      multi_core.push_back(std::move(r));
    }

    SketchStore zipf_store;
    std::vector<std::string> zipf_names;
    for (int i = 0; i < 16; ++i) {
      zipf_names.push_back("z" + std::to_string(i));
      (void)zipf_store.RegisterDataset(zipf_names.back(), &engine);
      (void)zipf_store.Register(zipf_names.back(), wb.spec, shared);
    }
    zipf = RunZipfian(&zipf_store, wb.spec, zipf_names, wb.test_q, 8, 0.99);
    std::printf("zipfian load (s=%.2f over %zu stores, 8 clients): %.0f qps, "
                "p50 %.0f / p99 %.0f / p999 %.0f us, hottest store %.0f%%, "
                "shard imbalance %.2fx\n",
                zipf.s, zipf.stores, zipf.qps, zipf.stats.p50_us,
                zipf.stats.p99_us, zipf.stats.p999_us,
                zipf.hottest_share * 100.0, zipf.shard_imbalance);
  }

  // Narrow-tier serving: reload each persisted sketch (precision survives
  // serialization) into a fresh store and run the headline micro-batch
  // configuration on it.
  auto serve_tier = [&](const char* name, const std::string& path,
                        TierReport* report,
                        uint64_t ServeStats::*counter) {
    SketchStore tier_store;
    (void)tier_store.RegisterDataset("bench", &engine);
    auto ver = tier_store.RegisterFromFile("bench", wb.spec, path);
    if (ver.ok()) {
      RunResult mb = RunBatched(&tier_store, wb.spec, wb.test_q, 8, 512,
                                200.0);
      report->micro_batch_qps8 = mb.qps;
      report->tier_answers = mb.stats.*counter;
      std::printf("%s tier: 8 clients, micro-batch (window 200us): %.0f qps "
                  "(%llu %s answers)\n",
                  name, mb.qps,
                  static_cast<unsigned long long>(report->tier_answers),
                  name);
    } else {
      std::fprintf(stderr, "warning: %s sketch register failed (%s); the "
                   "%s serving numbers will be zero\n",
                   name, ver.status().ToString().c_str(), name);
    }
    std::remove(path.c_str());
  };
  if (f32.active) {
    serve_tier("f32", f32_path, &f32, &ServeStats::f32_sketch_answers);
  }
  if (i8.active) {
    serve_tier("int8", i8_path, &i8, &ServeStats::int8_sketch_answers);
  }

  // Paged-catalog arm: 256 cold sketches under a shrinking resident
  // budget vs the fully-resident baseline, with bit-identity checking.
  std::printf("\npaged catalog (%zu sketches, 4 clients):\n", kPagedSketches);
  const PagedCatalogReport paged = RunPagedCatalog(out_path);
  if (!paged.ran) {
    std::fprintf(stderr, "paged_catalog arm failed\n");
    return 1;
  }
  std::printf("  fully resident: %.0f qps (answers %s)\n",
              paged.fully_resident_qps,
              paged.baseline_answers_match ? "match" : "MISMATCH");
  for (const PagedBudgetRow& r : paged.rows) {
    std::printf("  budget %3.0f%% (%6.1f KB): %8.0f qps (%.2fx resident) | "
                "fault-in p50/p99 %.0f/%.0f us | %llu fault-ins, %llu "
                "evictions, peak %.1f KB | answers %s\n",
                r.budget_fraction * 100.0,
                static_cast<double>(r.budget_bytes) / 1024.0, r.qps,
                paged.fully_resident_qps > 0.0
                    ? r.qps / paged.fully_resident_qps
                    : 0.0,
                r.faultin_p50_us, r.faultin_p99_us,
                static_cast<unsigned long long>(r.pool.faultins),
                static_cast<unsigned long long>(r.pool.evictions),
                static_cast<double>(r.pool.peak_resident_bytes) / 1024.0,
                r.answers_match ? "match" : "MISMATCH");
  }

  // Streaming arm: serving under live appends, refresh off vs on.
  std::printf("\nstreaming ingest + refresh (%zu clients, training drift "
              "scenario)...\n",
              kStreamClients);
  const StreamingReport streaming = RunStreaming();
  if (!streaming.ran) {
    std::fprintf(stderr, "streaming arm failed\n");
    return 1;
  }
  std::printf("  refresh OFF: %8.0f qps, p50/p99 %.0f/%.0f us | answers %s "
              "| stale-sketch probe nmae %.3f (bound %.2f)\n",
              streaming.qps_refresh_off, streaming.p50_off_us,
              streaming.p99_off_us,
              streaming.answers_match_off ? "match" : "MISMATCH",
              streaming.drifted_normalized_mae,
              streaming.policy_max_normalized_mae);
  std::printf("  refresh ON:  %8.0f qps, p50/p99 %.0f/%.0f us | answers %s "
              "| post-refresh nmae "
              "%.3f | %llu swaps, %llu/%zu leaves retrained%s, lag %.0f ms\n",
              streaming.qps_refresh_on, streaming.p50_on_us,
              streaming.p99_on_us,
              streaming.answers_match_on ? "match" : "MISMATCH",
              streaming.post_refresh_normalized_mae,
              static_cast<unsigned long long>(streaming.refresh.swaps),
              static_cast<unsigned long long>(
                  streaming.refresh.retrained_leaves),
              streaming.total_leaves,
              streaming.full_rebuild ? " (FULL REBUILD)" : "",
              streaming.refresh_lag_ms);
  std::printf("  %zu delta rows appended; %llu corrected / %llu "
              "exact-recomputed answers on the ON arm\n",
              streaming.delta_rows,
              static_cast<unsigned long long>(streaming.delta_corrected_on),
              static_cast<unsigned long long>(streaming.delta_exact_on));

  // Compaction arm: sustained appends with base-table folding.
  std::printf("\nbase-table compaction under sustained appends...\n");
  const CompactionReport compaction = RunCompaction();
  if (!compaction.ran) {
    std::fprintf(stderr, "compaction arm failed\n");
    return 1;
  }
  auto print_compaction = [&](const char* mode,
                              const CompactionModeReport& m) {
    std::printf("  %-11s: %llu compactions, %llu rows folded / %llu "
                "trimmed | delta peak %zu rows, final %zu rows (%.1f KB, "
                "%s) | %zu answers %s\n",
                mode, static_cast<unsigned long long>(m.compactions),
                static_cast<unsigned long long>(m.folded_rows),
                static_cast<unsigned long long>(m.trimmed_rows),
                m.peak_delta_rows, m.final_delta_rows,
                static_cast<double>(m.final_delta_bytes) / 1024.0,
                m.delta_bounded ? "bounded" : "UNBOUNDED",
                m.sampled_answers, m.answers_match ? "match" : "MISMATCH");
  };
  print_compaction("refresh OFF", compaction.off);
  print_compaction("refresh ON", compaction.on);

  Status st = WriteJson(out_path, rows, per_query_qps8, batched_qps8,
                        scalar_lat, plan_lat, f32, i8, batched, obs,
                        multi_core, zipf, paged, streaming, compaction);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neurosketch

int main(int argc, char** argv) {
  return neurosketch::bench::Main(argc, argv);
}
