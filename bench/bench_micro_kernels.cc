// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// paper's query-time numbers: NeuroSketch forward pass (the few-microsecond
// claim), kd-tree routing, R-tree range queries, exact scans and GEMM.
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

// Shared fixtures built once.
struct Fixtures {
  PreparedDataset data = Prepare("VS");
  Workbench wb;
  Result<NeuroSketch> sketch = Status::Unknown("unbuilt");
  TreeAgg tree_agg;
  Fixtures() : wb(MakeWorkbench(Prepare("VS"), Aggregate::kAvg,
                                DefaultWorkload("VS", 1500), 800, 100)) {
    NeuroSketchConfig cfg = DefaultSketchConfig();
    cfg.train.epochs = 40;
    sketch = NeuroSketch::Train(wb.train_q, wb.train_a, cfg);
    TreeAggConfig tc;
    tc.sample_size = 4000;
    tree_agg = TreeAgg::Build(wb.data.normalized, tc);
  }
};

Fixtures& F() {
  static Fixtures fixtures;
  return fixtures;
}

void BM_NeuroSketchAnswer(benchmark::State& state) {
  auto& f = F();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.sketch.value().Answer(f.wb.test_q[i++ % f.wb.test_q.size()]));
  }
}
BENCHMARK(BM_NeuroSketchAnswer);

void BM_MlpForward(benchmark::State& state) {
  nn::Mlp model(nn::MlpConfig::Paper(6, state.range(0), 60, 30), 7);
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictOne(x));
  }
}
BENCHMARK(BM_MlpForward)->Arg(3)->Arg(5)->Arg(10);

void BM_CompiledMlpForward(benchmark::State& state) {
  nn::Mlp model(nn::MlpConfig::Paper(6, state.range(0), 60, 30), 7);
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);
  nn::Workspace ws;
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.PredictOne(x.data(), &ws));
  }
}
BENCHMARK(BM_CompiledMlpForward)->Arg(3)->Arg(5)->Arg(10);

void BM_CompiledMlpF32Forward(benchmark::State& state) {
  nn::Mlp model(nn::MlpConfig::Paper(6, state.range(0), 60, 30), 7);
  nn::CompiledMlpF32 plan =
      nn::CompiledMlpF32::FromPlan(nn::CompiledMlp::FromMlp(model));
  nn::Workspace ws;
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.PredictOne(x.data(), &ws));
  }
}
BENCHMARK(BM_CompiledMlpF32Forward)->Arg(3)->Arg(5)->Arg(10);

void BM_CompiledMlpI8Forward(benchmark::State& state) {
  nn::Mlp model(nn::MlpConfig::Paper(6, state.range(0), 60, 30), 7);
  nn::CompiledMlp f64 = nn::CompiledMlp::FromMlp(model);
  nn::Workspace ws;
  // Calibrate per-layer activation ranges on a small random workload, as
  // NeuroSketch::EnableInt8 does.
  Rng rng(1603);
  std::vector<double> absmax(f64.layers().size(), 0.0);
  for (int i = 0; i < 64; ++i) {
    std::vector<double> probe(6);
    for (auto& v : probe) v = rng.Uniform();
    f64.CalibrateOne(probe.data(), &ws, absmax.data());
  }
  nn::CompiledMlpI8 plan = nn::CompiledMlpI8::FromPlan(f64, absmax);
  std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.PredictOne(x.data(), &ws));
  }
}
BENCHMARK(BM_CompiledMlpI8Forward)->Arg(3)->Arg(5)->Arg(10);

void BM_TreeAggAnswer(benchmark::State& state) {
  auto& f = F();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree_agg.Answer(f.wb.spec, f.wb.test_q[i++ % f.wb.test_q.size()]));
  }
}
BENCHMARK(BM_TreeAggAnswer);

void BM_ExactScan(benchmark::State& state) {
  auto& f = F();
  ExactEngine engine(&f.wb.data.normalized);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.Answer(f.wb.spec, f.wb.test_q[i++ % f.wb.test_q.size()]));
  }
}
BENCHMARK(BM_ExactScan);

void BM_RTreeRangeQuery(benchmark::State& state) {
  Rng rng(1600);
  std::vector<std::vector<double>> points(
      static_cast<size_t>(state.range(0)), std::vector<double>(3));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  RTree tree = RTree::BulkLoad(points);
  std::vector<double> lo = {0.3, 0.3, 0.3}, hi = {0.5, 0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.RangeQuery(lo, hi));
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Gemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1601);
  Matrix a(n, n), b(n, n), out;
  for (size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Uniform();
  for (size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.Uniform();
  for (auto _ : state) {
    Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(64)->Arg(128);

void BM_KdTreeRoute(benchmark::State& state) {
  Rng rng(1602);
  std::vector<QueryInstance> queries;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> v(6);
    for (auto& x : v) x = rng.Uniform();
    queries.emplace_back(std::move(v));
  }
  auto tree = QuerySpaceKdTree::Build(queries, 4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Route(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_KdTreeRoute);

}  // namespace

BENCHMARK_MAIN();
