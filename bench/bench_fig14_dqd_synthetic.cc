// Fig. 14: confirming the DQD bound on synthetic data (Sec. 5.7). COUNT
// queries on uniform / Gaussian / 2-component GMM data whose LDQs are
// known in closed form (Examples 3.2/3.3).
// (a) fixed architecture (one hidden layer, 80 units): error vs data size.
// (b) fixed target error: smallest width that reaches it, and its query
//     time, vs data size.
//
// Expected shape (paper): error decreases with n; distributions order by
// LDQ (uniform < Gaussian < GMM) for large n; query time/size decrease
// with n at fixed error.
#include "bench_common.h"
#include "data/generators.h"
#include "theory/ldq.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

Table MakeData(const std::string& dist, size_t n, uint64_t seed) {
  if (dist == "uniform") return MakeUniformTable(n, 1, seed);
  if (dist == "gaussian") return MakeGaussianTable(n, 1, 0.5, 0.15, seed);
  // Two-component GMM.
  GaussianComponent a, b;
  a.mean = {0.3};
  a.stddev = {0.06};
  a.weight = 0.5;
  b.mean = {0.7};
  b.stddev = {0.06};
  b.weight = 0.5;
  return MakeGmmTable(GmmDistribution({a, b}), n, seed);
}

struct EvalResult {
  double err;
  double query_us;
  size_t width;
};

EvalResult TrainAndEval(const Table& table, size_t width, uint64_t seed) {
  ExactEngine engine(&table);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 0);
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.5;
  wc.min_matches = 0;
  wc.seed = seed;
  WorkloadGenerator gen(1, wc);
  auto train_q = gen.GenerateMany(3000);
  auto train_a = engine.AnswerBatch(spec, train_q, 8);
  // Normalize answers by n (the DQD error is 1/n-scaled).
  for (auto& a : train_a) a /= static_cast<double>(table.num_rows());
  wc.seed = seed + 5;
  WorkloadGenerator tg(1, wc);
  auto test_q = tg.GenerateMany(300);
  auto test_a = engine.AnswerBatch(spec, test_q, 8);
  for (auto& a : test_a) a /= static_cast<double>(table.num_rows());

  NeuroSketchConfig cfg;
  cfg.tree_height = 0;  // partitioning disabled (paper Sec. 5.7)
  cfg.target_partitions = 1;
  cfg.n_layers = 3;  // input -> one hidden layer -> output
  cfg.l_first = width;
  cfg.l_rest = width;
  cfg.train.epochs = 400;
  cfg.train.learning_rate = 3e-3;
  cfg.train.lr_decay = 0.5;
  cfg.train.decay_every = 100;
  auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
  EvalResult out{1e9, 0.0, width};
  if (!sketch.ok()) return out;
  Timer timer;
  std::vector<double> pred;
  pred.reserve(test_q.size());
  for (const auto& q : test_q) pred.push_back(sketch.value().Answer(q));
  out.query_us = timer.ElapsedMicros() / static_cast<double>(test_q.size());
  // Mean absolute error of the n-normalized count (the DQD quantity).
  double acc = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    acc += std::fabs(pred[i] - test_a[i]);
  }
  out.err = acc / static_cast<double>(pred.size());
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 14: DQD bound on synthetic data (COUNT, 1-D)");
  std::printf("closed-form LDQs: uniform=%.2f gaussian(0.15)=%.2f "
              "gmm(2x0.06)=%.2f\n",
              theory::LdqUniformCount(), theory::LdqGaussianCount(0.15),
              theory::LdqGmmCountBound({0.5, 0.5}, {0.06, 0.06}));

  std::printf("\n(a) fixed architecture (1 hidden layer, 80 units): "
              "1/n-scaled MAE\n");
  std::printf("%10s %12s %12s %12s\n", "n", "uniform", "gaussian", "gmm");
  for (size_t n : {100u, 1000u, 10000u, 100000u}) {
    std::printf("%10zu", n);
    for (const char* dist : {"uniform", "gaussian", "gmm"}) {
      Table t = MakeData(dist, n, 1000 + n);
      std::printf(" %12.5f", TrainAndEval(t, 80, 2000 + n).err);
    }
    std::printf("\n");
  }

  std::printf("\n(b) fixed error target 0.01: smallest width reaching it "
              "and its query time\n");
  std::printf("%10s %-10s %8s %12s\n", "n", "dist", "width", "query_us");
  for (size_t n : {1000u, 10000u, 100000u}) {
    for (const char* dist : {"uniform", "gaussian", "gmm"}) {
      Table t = MakeData(dist, n, 3000 + n);
      EvalResult found{1e9, 0.0, 0};
      for (size_t width : {5u, 10u, 20u, 40u, 80u, 160u}) {
        EvalResult r = TrainAndEval(t, width, 4000 + n + width);
        if (r.err <= 0.01) {
          found = r;
          break;
        }
        found = r;  // keep the largest tried if none reaches target
      }
      std::printf("%10zu %-10s %8zu %12.2f  (err=%.4f)\n", n, dist,
                  found.width, found.query_us, found.err);
    }
  }
  std::printf(
      "\nShape checks vs paper: (a) error decreases with n and, at large\n"
      "n, orders as uniform < gaussian < gmm (their LDQ order); (b) the\n"
      "width (hence query time) needed for fixed error shrinks as n grows.\n");
  return 0;
}
