// Fig. 10: time/space/accuracy trade-offs on VS for different NeuroSketch
// hyper-parameters (kd-tree height h, width w, depth d), compared with
// TREE-AGG / VerdictDB at different sampling rates and DeepDB at different
// RDC thresholds.
//
// Expected shape (paper): NeuroSketch dominates in the fast/low-space
// regime; TREE-AGG wins when near-exact answers are required; the kd-tree
// height improves accuracy at almost no time cost.
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

MethodRow RunSketch(const Workbench& wb, size_t h, size_t w, size_t d,
                    const std::string& label) {
  NeuroSketchConfig cfg = DefaultSketchConfig();
  cfg.tree_height = h;
  cfg.target_partitions = static_cast<size_t>(1) << h;  // no merging
  cfg.l_first = w;
  cfg.l_rest = w;
  cfg.n_layers = d;
  auto sketch = NeuroSketch::Train(wb.train_q, wb.train_a, cfg);
  if (!sketch.ok()) return Unsupported(label);
  return Measure(
      label, wb,
      [&](const QueryInstance& q) { return sketch.value().Answer(q); },
      static_cast<double>(sketch.value().SizeBytes()));
}

}  // namespace

int main() {
  PrintHeader("Figure 10: time/space/accuracy trade-offs (VS, AVG)");
  PreparedDataset data = Prepare("VS");
  const size_t data_bytes = data.normalized.SizeBytes();
  Workbench wb = MakeWorkbench(std::move(data), Aggregate::kAvg,
                               DefaultWorkload("VS", 600), 2000, 200);

  std::vector<MethodRow> rows;
  // Line (h, 48, 5): vary kd-tree height at fixed architecture.
  for (size_t h : {0u, 1u, 2u, 3u, 4u}) {
    rows.push_back(RunSketch(wb, h, 48, 5, "NS(h=" + std::to_string(h) +
                                               ",w=48,d=5)"));
  }
  // Line (0, w, 5): vary width, single partition.
  for (size_t w : {15u, 30u, 60u, 120u}) {
    rows.push_back(RunSketch(wb, 0, w, 5, "NS(h=0,w=" + std::to_string(w) +
                                              ",d=5)"));
  }
  // Line (0, 30, d): vary depth.
  for (size_t d : {2u, 5u, 10u}) {
    rows.push_back(RunSketch(wb, 0, 30, d, "NS(h=0,w=30,d=" +
                                               std::to_string(d) + ")"));
  }
  // Baselines at different sampling rates.
  const size_t n = wb.data.normalized.num_rows();
  for (double pct : {1.0, 0.5, 0.2, 0.1}) {
    TreeAggConfig tc;
    tc.sample_size = static_cast<size_t>(pct * n);
    TreeAgg agg = TreeAgg::Build(wb.data.normalized, tc);
    char label[48];
    std::snprintf(label, sizeof(label), "TREE-AGG(%.0f%%)", pct * 100);
    rows.push_back(Measure(
        label, wb,
        [&](const QueryInstance& q) { return agg.Answer(wb.spec, q); },
        static_cast<double>(agg.SizeBytes())));
    VerdictConfig vc;
    vc.sample_size = static_cast<size_t>(pct * n);
    Verdict v = Verdict::Build(wb.data.normalized, vc);
    std::snprintf(label, sizeof(label), "VerdictDB(%.0f%%)", pct * 100);
    rows.push_back(Measure(
        label, wb,
        [&](const QueryInstance& q) {
          auto r = v.Answer(wb.spec, q);
          return r.ok() ? r.value() : std::nan("");
        },
        static_cast<double>(v.SizeBytes())));
  }
  // DeepDB at different RDC thresholds.
  for (double rdc : {0.1, 0.3, 1.0}) {
    SpnConfig sc;
    sc.rdc_threshold = rdc;
    Spn spn = Spn::Build(wb.data.normalized, sc);
    char label[48];
    std::snprintf(label, sizeof(label), "DeepDB(rdc=%.1f)", rdc);
    rows.push_back(Measure(
        label, wb,
        [&](const QueryInstance& q) {
          auto r = spn.Answer(wb.spec, q);
          return r.ok() ? r.value() : std::nan("");
        },
        static_cast<double>(spn.SizeBytes())));
  }
  PrintRows("VS sweep", rows);
  std::printf("\n(raw data size: %.2f MB)\n",
              static_cast<double>(data_bytes) / (1024.0 * 1024.0));
  std::printf(
      "Shape checks vs paper: accuracy improves with width/depth then\n"
      "plateaus; kd-tree height improves accuracy at ~no time cost;\n"
      "TREE-AGG(100%%) is near-exact but orders of magnitude slower.\n");
  return 0;
}
