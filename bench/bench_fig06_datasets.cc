// Fig. 6 (a,b,c): error, query time and storage of NeuroSketch vs
// TREE-AGG, VerdictDB, DeepDB(SPN) and DBEst across all datasets. AVG
// aggregation with one active attribute (VS: lat+lon), as in Sec. 5.1.
//
// Expected shape (paper): NeuroSketch lowest error on most datasets,
// query time orders of magnitude below the baselines, size < 1 MB while
// DeepDB grows with data size (TPC10 vs TPC1).
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Figure 6: RAQs across datasets (AVG, 1 active attribute)");
  const char* datasets[] = {"PM", "VS", "G5", "G10", "G20", "TPC1", "TPC10"};
  for (const char* name : datasets) {
    PreparedDataset data = Prepare(name);
    const size_t rows = data.normalized.num_rows();
    Workbench wb = MakeWorkbench(std::move(data), Aggregate::kAvg,
                                 DefaultWorkload(name, 100), /*n_train=*/2400,
                                 /*n_test=*/200);
    CompareOptions opt;
    // DBEst is excluded for VS in the paper (multiple active attributes).
    auto rows_out = CompareMethods(wb, opt);
    PrintRows(std::string(name) + " (n=" + std::to_string(rows) + ")",
              rows_out);
  }
  std::printf(
      "\nShape checks vs paper: NeuroSketch query time should be the\n"
      "smallest by >=1 order of magnitude; its size stays ~constant across\n"
      "datasets while DeepDB's grows with data size (TPC10 > TPC1).\n");
  return 0;
}
