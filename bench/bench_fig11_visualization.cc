// Fig. 11: visualization of the learned query function for the running
// example (VS, avg visit duration with a fixed 2-D range), for two model
// depths. Prints a coarse character raster of ground truth vs learned
// functions and dumps full grids to CSV for plotting.
//
// Expected shape (paper): the learned surface follows the ground-truth
// pattern with sharp drops smoothed out; the deeper model is closer.
#include "bench_common.h"
#include "util/csv.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

constexpr size_t kGrid = 14;
constexpr double kRange = 0.15;  // fixed (r1, r2), like the 50m x 50m query

char Shade(double v, double lo, double hi) {
  static const char* ramp = " .:-=+*#%@";
  if (hi <= lo) return ' ';
  int idx = static_cast<int>((v - lo) / (hi - lo) * 9.0);
  idx = std::max(0, std::min(9, idx));
  return ramp[idx];
}

void PrintRaster(const std::string& title,
                 const std::vector<std::vector<double>>& grid) {
  double lo = 1e300, hi = -1e300;
  for (const auto& row : grid) {
    for (double v : row) {
      if (!std::isnan(v)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  std::printf("\n%s  (lo=%.3f hi=%.3f)\n", title.c_str(), lo, hi);
  for (const auto& row : grid) {
    std::printf("  ");
    for (double v : row) std::printf("%c", std::isnan(v) ? '?' : Shade(v, lo, hi));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 11: learned query function visualization (VS)");
  PreparedDataset data = Prepare("VS");
  ExactEngine engine(&data.normalized);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);

  // Training set: 2-D queries with fixed range over lat/lon.
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.range_frac_lo = wc.range_frac_hi = kRange;
  wc.min_matches = 1;
  wc.seed = 700;
  WorkloadGenerator gen(3, wc);
  auto train_q = gen.GenerateMany(2500, &engine, &spec);
  auto train_a = engine.AnswerBatch(spec, train_q, 8);

  auto make_grid = [&](auto&& fn) {
    std::vector<std::vector<double>> grid(kGrid, std::vector<double>(kGrid));
    for (size_t i = 0; i < kGrid; ++i) {
      for (size_t j = 0; j < kGrid; ++j) {
        const double c0 = (1.0 - kRange) * i / (kGrid - 1);
        const double c1 = (1.0 - kRange) * j / (kGrid - 1);
        QueryInstance q = QueryInstance::AxisRange({c0, c1, 0.0},
                                                   {kRange, kRange, 1.0});
        grid[i][j] = fn(q);
      }
    }
    return grid;
  };

  auto truth = make_grid(
      [&](const QueryInstance& q) { return engine.Answer(spec, q); });
  PrintRaster("Ground truth f_D (avg visit duration)", truth);

  std::vector<std::vector<double>> csv_rows;
  for (size_t depth : {5u, 10u}) {
    NeuroSketchConfig cfg = DefaultSketchConfig();
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.n_layers = depth;
    cfg.l_first = 48;
    cfg.l_rest = 24;
    auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
    if (!sketch.ok()) continue;
    auto learned = make_grid(
        [&](const QueryInstance& q) { return sketch.value().Answer(q); });
    PrintRaster("NeuroSketch depth=" + std::to_string(depth), learned);
    for (size_t i = 0; i < kGrid; ++i) {
      for (size_t j = 0; j < kGrid; ++j) {
        csv_rows.push_back({static_cast<double>(depth),
                            static_cast<double>(i), static_cast<double>(j),
                            truth[i][j], learned[i][j]});
      }
    }
    std::printf("  model size: %.1f%% of data size\n",
                100.0 * static_cast<double>(sketch.value().SizeBytes()) /
                    static_cast<double>(data.normalized.SizeBytes()));
  }
  Status st = csv::WriteNumeric("fig11_grids.csv",
                                {"depth", "i", "j", "truth", "learned"},
                                csv_rows);
  if (st.ok()) std::printf("\nfull grids written to fig11_grids.csv\n");
  return 0;
}
