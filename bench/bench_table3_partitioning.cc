// Table 3: ablation of the partitioning step. For each dataset, compare
// (1) no partitioning, (2) partitioning without merging (height 3 -> 8
// leaves), (3) partitioning with merging (height 4 -> merge to 8 leaves),
// and report the normalized AQC STD across leaves together with the
// improvement of partitioning over no partitioning.
//
// Expected shape (paper): partitioning (either variant) beats a single
// model; improvement correlates with the normalized AQC STD across leaves.
#include "bench_common.h"
#include "core/partitioner.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

struct AblationRow {
  std::string dataset;
  double aqc_std_norm;
  double improve_merge_pct;
  double improve_nomerge_pct;
};

double EvalConfig(const Workbench& wb, size_t height, size_t partitions) {
  // A deliberately capacity-limited architecture: partitioning pays off
  // when one model cannot cover the whole query space (paper Sec. 5.5).
  NeuroSketchConfig cfg = DefaultSketchConfig();
  cfg.l_first = 24;
  cfg.l_rest = 12;
  cfg.train.epochs = 220;
  cfg.tree_height = height;
  cfg.target_partitions = partitions;
  auto sketch = NeuroSketch::Train(wb.train_q, wb.train_a, cfg);
  if (!sketch.ok()) return 1e9;
  std::vector<double> truth, pred;
  for (size_t i = 0; i < wb.test_q.size(); ++i) {
    if (std::isnan(wb.test_a[i])) continue;
    truth.push_back(wb.test_a[i]);
    pred.push_back(sketch.value().Answer(wb.test_q[i]));
  }
  return stats::NormalizedMae(truth, pred);
}

}  // namespace

int main() {
  PrintHeader("Table 3: partitioning ablation (merge vs no-merge vs none)");
  std::printf("%-8s %14s %18s %20s\n", "dataset", "norm_AQC_STD",
              "%improved(merge)", "%improved(no-merge)");
  std::vector<AblationRow> rows;
  for (const char* name : {"VS", "PM", "TPC1", "G5", "G10"}) {
    // Average over independent workload seeds: at this reduced scale a
    // single train/test draw is noisy relative to the few-percent effect.
    double none = 0.0, no_merge = 0.0, merge = 0.0, norm_std = 0.0;
    const uint64_t seeds[] = {1100, 2100, 3100};
    for (uint64_t seed : seeds) {
      Workbench wb = MakeWorkbench(Prepare(name), Aggregate::kAvg,
                                   DefaultWorkload(name, seed), 6000, 300);
      // Normalized AQC STD across the 16 height-4 leaves (Alg. 3 inputs).
      PartitionConfig pc;
      pc.tree_height = 4;
      pc.target_leaves = 16;
      PartitionResult pr = PartitionQuerySpace(wb.train_q, wb.train_a, pc);
      const double aqc_mean = stats::Mean(pr.leaf_aqc);
      const double aqc_std = stats::Stddev(pr.leaf_aqc);
      norm_std += (aqc_mean > 0 ? aqc_std / aqc_mean : 0.0) / 3.0;
      none += EvalConfig(wb, 0, 1) / 3.0;
      no_merge += EvalConfig(wb, 3, 8) / 3.0;
      merge += EvalConfig(wb, 4, 8) / 3.0;
    }
    AblationRow row;
    row.dataset = name;
    row.aqc_std_norm = norm_std;
    row.improve_merge_pct = 100.0 * (none - merge) / none;
    row.improve_nomerge_pct = 100.0 * (none - no_merge) / none;
    rows.push_back(row);
    std::printf("%-8s %14.3f %18.1f %20.1f\n", name, norm_std,
                row.improve_merge_pct, row.improve_nomerge_pct);
  }
  // Correlation of improvement with normalized AQC STD (paper: 0.87/0.94).
  std::vector<double> xs, ym, yn;
  for (const auto& r : rows) {
    xs.push_back(r.aqc_std_norm);
    ym.push_back(r.improve_merge_pct);
    yn.push_back(r.improve_nomerge_pct);
  }
  std::printf("%-8s %14s %18.2f %20.2f\n", "corr", "",
              stats::PearsonCorrelation(xs, ym),
              stats::PearsonCorrelation(xs, yn));
  std::printf(
      "\nShape checks vs paper: partitioning improves over none on most\n"
      "datasets; improvement correlates positively with norm AQC STD.\n");
  return 0;
}
