// Fig. 13: preprocessing cost. (a) training-set generation time per
// dataset; (b) architecture grid search: best-found error (relative to the
// default architecture) as the search progresses; (c) training-duration
// curve: loss over epochs.
//
// Expected shape (paper): training-set generation is seconds at this
// scale; the grid search reaches within ~10% of the default architecture
// quickly; training converges within a few minutes (here: seconds).
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Figure 13a: training-set generation time");
  std::printf("%-8s %10s %14s\n", "dataset", "rows", "gen_seconds");
  for (const char* name : {"PM", "VS", "G5", "G10", "G20", "TPC1"}) {
    PreparedDataset data = Prepare(name);
    ExactEngine engine(&data.normalized);
    QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);
    WorkloadConfig wc = DefaultWorkload(name, 900);
    WorkloadGenerator gen(data.normalized.num_columns(), wc);
    auto queries = gen.GenerateMany(2000);
    Timer timer;
    auto answers = engine.AnswerBatch(spec, queries, 8);
    std::printf("%-8s %10zu %14.3f\n", name, data.normalized.num_rows(),
                timer.ElapsedSeconds());
    (void)answers;
  }

  PrintHeader("Figure 13b: architecture grid search (VS)");
  {
    PreparedDataset data = Prepare("VS");
    ExactEngine engine(&data.normalized);
    QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);
    WorkloadConfig wc = DefaultWorkload("VS", 901);
    WorkloadGenerator gen(data.normalized.num_columns(), wc);
    auto train_q = gen.GenerateMany(1500, &engine, &spec);
    auto train_a = engine.AnswerBatch(spec, train_q, 8);
    wc.seed += 17;
    WorkloadGenerator tg(data.normalized.num_columns(), wc);
    auto test_q = tg.GenerateMany(150, &engine, &spec);
    auto test_a = engine.AnswerBatch(spec, test_q, 8);

    auto eval_arch = [&](size_t w, size_t d) {
      NeuroSketchConfig cfg = DefaultSketchConfig();
      cfg.l_first = w;
      cfg.l_rest = w;
      cfg.n_layers = d;
      auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
      if (!sketch.ok()) return 1e9;
      std::vector<double> truth, pred;
      for (size_t i = 0; i < test_q.size(); ++i) {
        if (std::isnan(test_a[i])) continue;
        truth.push_back(test_a[i]);
        pred.push_back(sketch.value().Answer(test_q[i]));
      }
      return stats::NormalizedMae(truth, pred);
    };

    const double default_err = eval_arch(48, 5);
    std::printf("default architecture (w=48,d=5): norm_MAE=%.4f\n",
                default_err);
    std::printf("%-8s %-18s %12s %12s %10s\n", "step", "arch", "norm_MAE",
                "best_ratio", "elapsed_s");
    // Grid search in a shuffled order, reporting best-so-far ratio over
    // time (the honest substitute for the paper's Optuna run).
    std::vector<std::pair<size_t, size_t>> grid = {
        {8, 3}, {16, 3}, {64, 3}, {8, 5},  {24, 5},
        {64, 5}, {16, 7}, {32, 7}, {48, 4}, {96, 5}};
    Rng rng(902);
    rng.Shuffle(&grid);
    Timer timer;
    double best = 1e9;
    for (size_t step = 0; step < grid.size(); ++step) {
      auto [w, d] = grid[step];
      best = std::min(best, eval_arch(w, d));
      char arch[32];
      std::snprintf(arch, sizeof(arch), "(w=%zu,d=%zu)", w, d);
      std::printf("%-8zu %-18s %12.4f %12.3f %10.2f\n", step + 1, arch, best,
                  best / default_err, timer.ElapsedSeconds());
    }
  }

  PrintHeader("Figure 13c: training-duration curve (VS, loss vs epoch)");
  {
    PreparedDataset data = Prepare("VS");
    ExactEngine engine(&data.normalized);
    QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);
    WorkloadConfig wc = DefaultWorkload("VS", 903);
    WorkloadGenerator gen(data.normalized.num_columns(), wc);
    auto train_q = gen.GenerateMany(1500, &engine, &spec);
    auto train_a = engine.AnswerBatch(spec, train_q, 8);
    for (size_t width : {120u, 30u}) {
      // Train a single partition directly to expose the loss curve.
      Matrix inputs(train_q.size(), train_q[0].dim());
      Matrix targets(train_q.size(), 1);
      std::vector<double> clean;
      size_t row = 0;
      for (size_t i = 0; i < train_q.size(); ++i) {
        if (std::isnan(train_a[i])) continue;
        for (size_t j = 0; j < train_q[i].dim(); ++j) {
          inputs(row, j) = train_q[i][j];
        }
        clean.push_back(train_a[i]);
        ++row;
      }
      const double mean = stats::Mean(clean);
      const double sd = std::max(stats::Stddev(clean), 1e-9);
      for (size_t i = 0; i < clean.size(); ++i) {
        targets(i, 0) = (clean[i] - mean) / sd;
      }
      Matrix in2(row, train_q[0].dim());
      Matrix tg2(row, 1);
      for (size_t i = 0; i < row; ++i) {
        std::copy(inputs.row(i), inputs.row(i) + inputs.cols(), in2.row(i));
        tg2(i, 0) = targets(i, 0);
      }
      nn::Mlp model(nn::MlpConfig::Paper(train_q[0].dim(), 5, width, width),
                    904);
      nn::TrainConfig tc;
      tc.epochs = 120;
      tc.learning_rate = 2e-3;
      Timer timer;
      nn::TrainReport report = nn::TrainRegressor(&model, in2, tg2, tc);
      std::printf("width=%zu: ", width);
      for (size_t e = 0; e < report.epoch_losses.size(); e += 20) {
        std::printf("ep%zu=%.4f ", e, report.epoch_losses[e]);
      }
      std::printf("final=%.4f (%.1fs)\n", report.final_loss,
                  timer.ElapsedSeconds());
    }
    std::printf(
        "\nShape check vs paper: larger width converges in fewer epochs.\n");
  }
  return 0;
}
