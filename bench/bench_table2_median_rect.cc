// Table 2: median visit duration for general (rotated) rectangles on VS.
// The predicate takes two opposite corners plus an angle (Sec. 5.2.2).
//
// Expected shape (paper): NeuroSketch ~accuracy of TREE-AGG at a fraction
// of the query time; DeepDB and VerdictDB cannot answer this query (N/A).
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Table 2: MEDIAN visit duration, rotated rectangles (VS)");
  Workbench wb;
  wb.data = Prepare("VS");
  const Table& table = wb.data.normalized;

  QueryFunctionSpec spec;
  spec.predicate = RotatedRectPredicate::Make();
  spec.agg = Aggregate::kMedian;
  spec.measure_col = wb.data.measure_col;

  ExactEngine engine(&table);
  WorkloadConfig wc;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.4;
  wc.min_matches = 5;
  wc.seed = 500;
  WorkloadGenerator gen(table.num_columns(), wc);
  wb.spec = spec;
  wb.train_q = gen.GenerateRotatedRects(3000, &engine, &spec);
  wb.train_a = engine.AnswerBatch(spec, wb.train_q, 8);
  wc.seed = 501;
  WorkloadGenerator test_gen(table.num_columns(), wc);
  wb.test_q = test_gen.GenerateRotatedRects(200, &engine, &spec);
  wb.test_a = engine.AnswerBatch(spec, wb.test_q, 8);

  std::vector<MethodRow> rows;
  auto sketch = NeuroSketch::Train(wb.train_q, wb.train_a,
                                   DefaultSketchConfig());
  if (sketch.ok()) {
    rows.push_back(Measure(
        "NeuroSketch", wb,
        [&](const QueryInstance& q) { return sketch.value().Answer(q); },
        static_cast<double>(sketch.value().SizeBytes())));
  }
  TreeAggConfig tc;
  tc.sample_size = 4000;
  TreeAgg agg = TreeAgg::Build(table, tc);
  rows.push_back(Measure(
      "TREE-AGG", wb,
      [&](const QueryInstance& q) { return agg.Answer(wb.spec, q); },
      static_cast<double>(agg.SizeBytes())));
  rows.push_back(Unsupported("DeepDB"));    // predicate not supported
  rows.push_back(Unsupported("VerdictDB"));  // aggregation not supported
  PrintRows("median/rotated-rect", rows);
  std::printf(
      "\nShape check vs paper (Table 2): NeuroSketch error is comparable\n"
      "to TREE-AGG with >=10x lower query time; DeepDB/VerdictDB are N/A.\n");
  return 0;
}
