// Fig. 19 (Appendix A.5): using the Theorem-3.4 construction in practice.
// Compares CS (the construction as-is), CS+SGD (construction as SGD
// initialization) and randomly initialized FNN+SGD at several depths, for
// a 2-D and a 4-D query function on VS-like data, with roughly matched
// parameter budgets.
//
// Expected shape (paper): for the 2-D query CS+SGD is competitive or
// better and CS is close to FNNs; for the 4-D query CS degrades badly and
// FNN+SGD wins.
#include "bench_common.h"
#include "nn/construction.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

struct Series {
  std::vector<QueryInstance> train_q, test_q;
  std::vector<double> train_a, test_a;
  size_t qdim;
};

Series MakeSeries(bool four_d) {
  Dataset d = MakeVerasetLike(20000, 1400);
  Normalizer norm = Normalizer::Fit(d.table);
  Table table = norm.Transform(d.table);
  ExactEngine engine(&table);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 2);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.min_matches = 3;
  wc.seed = 1401;
  if (four_d) {
    wc.range_frac_lo = 0.1;
    wc.range_frac_hi = 0.5;
  } else {
    wc.range_frac_lo = wc.range_frac_hi = 0.2;  // fixed range -> 2-D input
  }
  WorkloadGenerator gen(3, wc);
  Series s;
  auto full_train = gen.GenerateMany(1500, &engine, &spec);
  s.train_a = engine.AnswerBatch(spec, full_train, 8);
  wc.seed = 1402;
  WorkloadGenerator tg(3, wc);
  auto full_test = tg.GenerateMany(250, &engine, &spec);
  s.test_a = engine.AnswerBatch(spec, full_test, 8);
  // Project the full 6-D (c, r) encoding down to the active inputs:
  // 2-D query: (c0, c1); 4-D query: (c0, c1, r0, r1).
  auto project = [&](const QueryInstance& q) {
    std::vector<double> v = {q[0], q[1]};
    if (four_d) {
      v.push_back(q[3 + 0]);
      v.push_back(q[3 + 1]);
    }
    return QueryInstance(v);
  };
  for (const auto& q : full_train) s.train_q.push_back(project(q));
  for (const auto& q : full_test) s.test_q.push_back(project(q));
  s.qdim = four_d ? 4 : 2;
  return s;
}

double NormMae(const Series& s, const std::function<double(
                                    const QueryInstance&)>& answer) {
  std::vector<double> truth, pred;
  for (size_t i = 0; i < s.test_q.size(); ++i) {
    if (std::isnan(s.test_a[i])) continue;
    truth.push_back(s.test_a[i]);
    pred.push_back(answer(s.test_q[i]));
  }
  return stats::NormalizedMae(truth, pred);
}

void RunSeries(const char* title, bool four_d) {
  std::printf("\n-- %s --\n", title);
  Series s = MakeSeries(four_d);
  // Grid resolution so the construction has a moderate parameter count.
  const size_t t = four_d ? 4 : 14;
  auto lookup = [&](const std::vector<double>& x) {
    // Nearest-training-query value as the construction's target f: the
    // construction needs f at grid vertices, which we estimate from the
    // training set (exact engine re-query would also work; this mirrors
    // learning from the training set only).
    double best = 1e300, val = 0.0;
    for (size_t i = 0; i < s.train_q.size(); ++i) {
      if (std::isnan(s.train_a[i])) continue;
      double d2 = 0.0;
      for (size_t j = 0; j < x.size(); ++j) {
        const double dd = x[j] - s.train_q[i][j];
        d2 += dd * dd;
      }
      if (d2 < best) {
        best = d2;
        val = s.train_a[i];
      }
    }
    return val;
  };
  auto cs = nn::GUnitNetwork::Construct(lookup, s.qdim, t, 1.0);
  if (cs.ok()) {
    std::printf("%-14s params=%-7zu norm_MAE=%.4f\n", "CS",
                cs.value().num_params(),
                NormMae(s, [&](const QueryInstance& q) {
                  return cs.value().Evaluate(q.q);
                }));
    // CS+SGD.
    Matrix inputs(s.train_q.size(), s.qdim), targets(s.train_q.size(), 1);
    size_t rows = 0;
    for (size_t i = 0; i < s.train_q.size(); ++i) {
      if (std::isnan(s.train_a[i])) continue;
      for (size_t j = 0; j < s.qdim; ++j) inputs(rows, j) = s.train_q[i][j];
      targets(rows, 0) = s.train_a[i];
      ++rows;
    }
    Matrix in2(rows, s.qdim), tg2(rows, 1);
    for (size_t i = 0; i < rows; ++i) {
      std::copy(inputs.row(i), inputs.row(i) + s.qdim, in2.row(i));
      tg2(i, 0) = targets(i, 0);
    }
    nn::GUnitNetwork tuned = std::move(cs).value();
    tuned.TrainSgd(in2, tg2, /*epochs=*/80, /*batch=*/32, /*lr=*/0.02, 1403);
    std::printf("%-14s params=%-7zu norm_MAE=%.4f\n", "CS+SGD",
                tuned.num_params(), NormMae(s, [&](const QueryInstance& q) {
                  return tuned.Evaluate(q.q);
                }));
  }
  // FNN+SGD at matched parameter budgets, varying depth.
  const size_t budget = four_d ? 4 * 625 : 3 * 225;  // ~construction size
  for (size_t depth : {2u, 4u, 6u, 8u}) {
    // Choose a width so total params ~ budget.
    size_t width = 4;
    for (size_t w = 4; w <= 256; w += 2) {
      nn::MlpConfig probe = nn::MlpConfig::Paper(s.qdim, depth, w, w);
      nn::Mlp m(probe, 1);
      if (m.num_params() > budget) break;
      width = w;
    }
    NeuroSketchConfig cfg;
    cfg.tree_height = 0;
    cfg.target_partitions = 1;
    cfg.n_layers = depth;
    cfg.l_first = width;
    cfg.l_rest = width;
    cfg.train.epochs = 120;
    cfg.train.learning_rate = 2e-3;
    auto sketch = NeuroSketch::Train(s.train_q, s.train_a, cfg);
    if (!sketch.ok()) continue;
    std::printf("FNN+SGD(%zu)    params~%-6zu norm_MAE=%.4f\n", depth,
                budget, NormMae(s, [&](const QueryInstance& q) {
                  return sketch.value().Answer(q);
                }));
  }
}

// ------------------------------------------------------------------------
// Thread-scaling of the end-to-end construction pipeline: every phase of
// NeuroSketch::Train (kd-tree partition + AQC merge, per-leaf training,
// and the int8 calibrate-then-validate replay) runs on the shared pool
// under NeuroSketchConfig::train_threads, and the build is bit-identical
// at every thread count (construction_parallel_test pins this; SizeBytes
// is printed here as a cheap witness). Expected shape: all three phases
// shrink as threads grow, with end-to-end speedup >= 1.5x at 4 threads.
void RunThreadScaling() {
  std::printf("\n-- construction thread-scaling (paper-default sketch) --\n");
  // A default workload big enough that partition crosses the kd-tree
  // parallel cutoff and calibration replays a few thousand queries.
  Dataset d = MakeVerasetLike(20000, 1400);
  Normalizer norm = Normalizer::Fit(d.table);
  Table table = norm.Transform(d.table);
  ExactEngine engine(&table);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 2);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.min_matches = 3;
  wc.seed = 1405;
  WorkloadGenerator gen(3, wc);
  auto queries = gen.GenerateMany(5000, &engine, &spec);
  auto answers = engine.AnswerBatch(spec, queries, 8);

  NeuroSketchConfig cfg;  // paper defaults: height 4, 8 leaves, 5x(60,30)
  cfg.train.epochs = 25;
  cfg.plan_precision = PlanPrecision::kInt8;  // exercises the calibrate phase
  cfg.seed = 1406;

  double base_total = 0.0;
  metrics::MetricsRegistry registry;
  std::printf("%8s %12s %12s %12s %12s %9s %12s\n", "threads", "partition_s",
              "train_s", "calibrate_s", "total_s", "speedup", "size_bytes");
  for (size_t threads : {1u, 2u, 4u, 0u}) {
    cfg.train_threads = threads;
    Timer total;
    auto sketch = NeuroSketch::Train(queries, answers, cfg);
    const double total_s = total.ElapsedSeconds();
    if (!sketch.ok()) continue;
    const auto& st = sketch.value().stats();
    if (threads == 1) base_total = total_s;
    std::printf("%8s %12.4f %12.4f %12.4f %12.4f %8.2fx %12zu\n",
                threads == 0 ? "hw" : std::to_string(threads).c_str(),
                st.partition_seconds, st.train_seconds, st.calibrate_seconds,
                total_s, base_total > 0.0 ? base_total / total_s : 0.0,
                sketch.value().SizeBytes());
    if (threads == 0) sketch.value().ExportBuildMetrics(&registry);
  }
  // The same uniform build-metrics document nsketch_cli train and the
  // serving bench emit (hw-thread build; see docs/OBSERVABILITY.md).
  std::printf("\n-- build metrics --\n%s", registry.TextExposition().c_str());
}

}  // namespace

int main() {
  PrintHeader("Figure 19: construction (CS) vs CS+SGD vs FNN+SGD");
  RunSeries("2-dimensional query function (fixed range)", false);
  RunSeries("4-dimensional query function (variable range)", true);
  RunThreadScaling();
  std::printf(
      "\nShape checks vs paper: CS is viable at 2-D (CS+SGD competitive);\n"
      "at 4-D CS degrades sharply and FNN+SGD dominates. Construction\n"
      "scales with train_threads across all phases, bit-identically.\n");
  return 0;
}
