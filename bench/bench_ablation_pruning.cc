// Ablation (paper Sec. 7 future work): magnitude pruning of the trained
// NeuroSketch MLPs. Sweeps sparsity levels and reports error before /
// after fine-tuning plus the forward-pass latency (the zero-skipping GEMM
// kernel benefits from sparsity).
//
// Expected shape: moderate sparsity (<= ~50%) preserves accuracy after a
// short fine-tune; extreme sparsity degrades it. Latency is reported for
// completeness but stays ~flat: the dense GEMM kernel only skips zero
// *activations*, so realizing the speedup would need a sparse weight
// format (CSR), which is beyond this ablation's scope.
#include "bench_common.h"
#include "nn/pruning.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Ablation: magnitude pruning of a trained query model (VS)");
  PreparedDataset data = Prepare("VS");
  ExactEngine engine(&data.normalized);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);
  WorkloadConfig wc = DefaultWorkload("VS", 1700);
  WorkloadGenerator gen(data.normalized.num_columns(), wc);
  auto train_q = gen.GenerateMany(1500, &engine, &spec);
  auto train_a = engine.AnswerBatch(spec, train_q, 8);
  wc.seed += 3;
  WorkloadGenerator tg(data.normalized.num_columns(), wc);
  auto test_q = tg.GenerateMany(200, &engine, &spec);
  auto test_a = engine.AnswerBatch(spec, test_q, 8);

  // A single-partition sketch exposes its one MLP for pruning; we train
  // the model directly via the nn layer for full control.
  const size_t qdim = train_q[0].dim();
  Matrix inputs(train_q.size(), qdim), targets(train_q.size(), 1);
  std::vector<double> clean;
  size_t rows = 0;
  for (size_t i = 0; i < train_q.size(); ++i) {
    if (std::isnan(train_a[i])) continue;
    for (size_t j = 0; j < qdim; ++j) inputs(rows, j) = train_q[i][j];
    clean.push_back(train_a[i]);
    ++rows;
  }
  const double mean = stats::Mean(clean);
  const double sd = std::max(stats::Stddev(clean), 1e-9);
  Matrix in2(rows, qdim), tg2(rows, 1);
  for (size_t i = 0; i < rows; ++i) {
    std::copy(inputs.row(i), inputs.row(i) + qdim, in2.row(i));
    tg2(i, 0) = (clean[i] - mean) / sd;
  }

  auto eval = [&](const nn::Mlp& model) {
    std::vector<double> truth, pred;
    for (size_t i = 0; i < test_q.size(); ++i) {
      if (std::isnan(test_a[i])) continue;
      truth.push_back(test_a[i]);
      pred.push_back(model.PredictOne(test_q[i].q) * sd + mean);
    }
    return stats::NormalizedMae(truth, pred);
  };
  auto latency_us = [&](const nn::Mlp& model) {
    Timer t;
    const int reps = 2000;
    for (int i = 0; i < reps; ++i) {
      volatile double v = model.PredictOne(test_q[i % test_q.size()].q);
      (void)v;
    }
    return t.ElapsedMicros() / reps;
  };

  nn::Mlp base(nn::MlpConfig::Paper(qdim, 5, 60, 30), 1701);
  nn::TrainConfig tc;
  tc.epochs = 150;
  tc.learning_rate = 2e-3;
  nn::TrainRegressor(&base, in2, tg2, tc);
  std::printf("%-10s %12s %12s %14s %12s\n", "sparsity", "err_pruned",
              "err_tuned", "fwd_latency_us", "zero_wts");
  std::printf("%-10s %12.4f %12s %14.2f %12zu\n", "0% (base)", eval(base),
              "-", latency_us(base), nn::CountZeroWeights(base));
  for (double sparsity : {0.25, 0.5, 0.75, 0.9}) {
    nn::Mlp pruned = base;  // copy
    nn::PruneByMagnitude(&pruned, sparsity);
    const double err_pruned = eval(pruned);
    nn::TrainConfig ft;
    ft.epochs = 30;
    ft.learning_rate = 5e-4;
    nn::FineTunePruned(&pruned, in2, tg2, ft);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", sparsity * 100);
    std::printf("%-10s %12.4f %12.4f %14.2f %12zu\n", label, err_pruned,
                eval(pruned), latency_us(pruned),
                nn::CountZeroWeights(pruned));
  }
  std::printf(
      "\nShape checks: fine-tuning recovers accuracy up to ~50%% sparsity;\n"
      "beyond that the error grows sharply. Latency is ~flat (dense GEMM).\n");
  return 0;
}
