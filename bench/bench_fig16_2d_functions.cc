// Fig. 15/16 + Table 4: 2-D dataset subsets (VS lat/duration, PM
// temperature/PM2.5, TPC ext_sales_price/net_profit), AVG query with a
// fixed 10%-of-domain range over the predicate column. Prints true vs
// learned query-function samples and the Table-4 (norm MAE, norm AQC)
// pairs.
//
// Expected shape (paper): VS has the sharpest query function, hence the
// largest AQC and MAE; PM is intermediate; TPC is smooth and easiest.
#include "bench_common.h"
#include "core/advisor.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

struct TwoD {
  std::string name;
  Table table;  // normalized, 2 columns: predicate, measure
};

TwoD MakeSubset(const std::string& which) {
  TwoD out;
  out.name = which;
  Schema s;
  s.columns = {"predicate", "measure"};
  Table raw(s);
  if (which == "VS(2D)") {
    Dataset d = MakeVerasetLike(20000, 1201);
    for (size_t i = 0; i < d.table.num_rows(); ++i) {
      Status st = raw.AppendRow({d.table.at(i, 0), d.table.at(i, 2)});
      (void)st;
    }
  } else if (which == "PM(2D)") {
    Dataset d = MakePmLike(20000, 1202);
    for (size_t i = 0; i < d.table.num_rows(); ++i) {
      Status st = raw.AppendRow({d.table.at(i, 1), d.table.at(i, 0)});
      (void)st;
    }
  } else {  // TPC(2D)
    Dataset d = MakeTpcLike(20000, 1203);
    const int sales = d.table.schema().Find("ext_sales_price");
    for (size_t i = 0; i < d.table.num_rows(); ++i) {
      Status st = raw.AppendRow(
          {d.table.at(i, sales), d.table.at(i, d.measure_col)});
      (void)st;
    }
  }
  Normalizer norm = Normalizer::Fit(raw);
  out.table = norm.Transform(raw);
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 16 / Table 4: 2-D query functions (AVG, r=10%)");
  const double kRange = 0.10;
  std::printf("%-10s %12s %12s\n", "dataset", "norm_MAE", "norm_AQC");
  for (const char* which : {"VS(2D)", "PM(2D)", "TPC(2D)"}) {
    TwoD sub = MakeSubset(which);
    ExactEngine engine(&sub.table);
    QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 1);

    // Training queries: c uniform, fixed r (predicate column active only).
    WorkloadConfig wc;
    wc.num_active = 1;
    wc.candidate_attrs = {0};
    wc.range_frac_lo = wc.range_frac_hi = kRange;
    wc.min_matches = 3;
    wc.seed = 1300;
    WorkloadGenerator gen(2, wc);
    auto train_q = gen.GenerateMany(1600, &engine, &spec);
    auto train_a = engine.AnswerBatch(spec, train_q, 8);

    NeuroSketchConfig cfg = DefaultSketchConfig();
    cfg.tree_height = 0;  // no partitioning, as in Fig. 16
    cfg.target_partitions = 1;
    auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
    if (!sketch.ok()) continue;

    wc.seed = 1301;
    WorkloadGenerator tg(2, wc);
    auto test_q = tg.GenerateMany(200, &engine, &spec);
    auto test_a = engine.AnswerBatch(spec, test_q, 8);
    std::vector<double> truth, pred;
    for (size_t i = 0; i < test_q.size(); ++i) {
      if (std::isnan(test_a[i])) continue;
      truth.push_back(test_a[i]);
      pred.push_back(sketch.value().Answer(test_q[i]));
    }
    const double mae = stats::NormalizedMae(truth, pred);
    const double aqc = Advisor::EstimateNormalizedAqc(train_q, train_a);
    std::printf("%-10s %12.4f %12.3f\n", which, mae, aqc);

    // Fig. 16: sample the true and learned 1-D query functions.
    std::printf("  c:       ");
    for (int i = 0; i <= 10; ++i) std::printf("%7.2f", 0.09 * i);
    std::printf("\n  f_D:     ");
    std::vector<double> learned_row;
    for (int i = 0; i <= 10; ++i) {
      QueryInstance q =
          QueryInstance::AxisRange({0.09 * i, 0.0}, {kRange, 1.0});
      std::printf("%7.3f", engine.Answer(spec, q));
      learned_row.push_back(sketch.value().Answer(q));
    }
    std::printf("\n  learned: ");
    for (double v : learned_row) std::printf("%7.3f", v);
    std::printf("\n");
  }
  std::printf(
      "\nShape checks vs paper (Table 4): AQC and MAE order as\n"
      "VS > PM > TPC; the learned curve smooths the sharp changes.\n");
  return 0;
}
