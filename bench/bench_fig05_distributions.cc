// Fig. 5: distribution of the measure column for PM, TPC, VS and a GMM.
// Prints text histograms whose shapes should match the paper: PM has a
// heavy right tail, TPC net_profit is roughly symmetric around 0, VS visit
// duration is bimodal-ish in (0, 20]h, GMM is multi-modal.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

using neurosketch::Dataset;

void PrintHistogram(const std::string& name, const std::vector<double>& v,
                    size_t bins = 24) {
  const double lo = neurosketch::stats::Min(v);
  const double hi = neurosketch::stats::Max(v);
  std::vector<size_t> counts(bins, 0);
  for (double x : v) {
    size_t b = static_cast<size_t>((x - lo) / (hi - lo) * bins);
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  const size_t peak = *std::max_element(counts.begin(), counts.end());
  std::printf("\n-- %s (min=%.2f max=%.2f mean=%.2f median=%.2f) --\n",
              name.c_str(), lo, hi, neurosketch::stats::Mean(v),
              neurosketch::stats::Median(const_cast<std::vector<double>&>(v)));
  for (size_t b = 0; b < bins; ++b) {
    const double x = lo + (hi - lo) * (b + 0.5) / bins;
    const int width =
        static_cast<int>(50.0 * counts[b] / static_cast<double>(peak));
    std::printf("%10.2f | %6.3f %s\n", x,
                static_cast<double>(counts[b]) / static_cast<double>(v.size()),
                std::string(width, '#').c_str());
  }
}

}  // namespace

int main() {
  neurosketch::bench::PrintHeader(
      "Figure 5: measure column distributions (PM, TPC, VS, GMM)");
  {
    Dataset d = neurosketch::MakePmLike(20000, 1);
    PrintHistogram("PM: PM2.5 (ug/m3)", d.table.column(d.measure_col));
  }
  {
    Dataset d = neurosketch::MakeTpcLike(20000, 2);
    PrintHistogram("TPC: net profit ($)", d.table.column(d.measure_col));
  }
  {
    Dataset d = neurosketch::MakeVerasetLike(20000, 3);
    PrintHistogram("VS: visit duration (h)", d.table.column(d.measure_col));
  }
  {
    Dataset d = neurosketch::MakeGmmDataset(20000, 2, 4, 4);
    PrintHistogram("GMM: measure column", d.table.column(d.measure_col));
  }
  return 0;
}
