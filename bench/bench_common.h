// Shared harness for the paper-reproduction benchmarks. Each bench binary
// regenerates one table/figure of the paper's evaluation (Sec. 5) at a
// reduced scale; this header holds the dataset preparation, method
// construction and measurement loops they share.
#ifndef NEUROSKETCH_BENCH_BENCH_COMMON_H_
#define NEUROSKETCH_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "baselines/dbest.h"
#include "baselines/spn.h"
#include "baselines/tree_agg.h"
#include "baselines/verdict.h"
#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "util/stats.h"
#include "util/timer.h"

namespace neurosketch {
namespace bench {

/// Row counts are scaled down from the paper so the full bench suite runs
/// in minutes on one CPU; relative comparisons are preserved.
inline double DatasetScale(const std::string& name) {
  if (name == "TPC1") return 0.008;   // ~21k rows
  if (name == "TPC10") return 0.008;  // ~212k rows (10x TPC1, as in paper)
  if (name == "PM") return 0.5;       // ~21k rows
  return 0.2;                         // VS/G*: ~20k rows
}

struct PreparedDataset {
  std::string name;
  Table normalized;
  size_t measure_col = 0;
  size_t raw_bytes = 0;
};

inline PreparedDataset Prepare(const std::string& name, uint64_t seed = 1) {
  auto ds = MakeDatasetByName(name, DatasetScale(name), seed);
  if (!ds.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    std::abort();
  }
  PreparedDataset out;
  out.name = name;
  out.measure_col = ds.value().measure_col;
  out.raw_bytes = ds.value().table.SizeBytes();
  Normalizer norm = Normalizer::Fit(ds.value().table);
  out.normalized = norm.Transform(ds.value().table);
  return out;
}

inline QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure_col) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure_col;
  return spec;
}

/// Default workload of Sec. 5.1: one active attribute, uniform ranges; VS
/// uses lat/lon as fixed active attributes.
inline WorkloadConfig DefaultWorkload(const std::string& dataset_name,
                                      uint64_t seed) {
  WorkloadConfig wc;
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.5;
  wc.min_matches = 5;
  wc.seed = seed;
  if (dataset_name == "VS") {
    wc.num_active = 2;
    wc.fixed_attrs = {0, 1};
  } else {
    wc.num_active = 1;
  }
  return wc;
}

/// Bench-scale NeuroSketch config (paper defaults shrunk ~2x for speed).
inline NeuroSketchConfig DefaultSketchConfig() {
  NeuroSketchConfig cfg;
  cfg.tree_height = 3;
  cfg.target_partitions = 4;
  cfg.n_layers = 5;
  cfg.l_first = 48;
  cfg.l_rest = 24;
  cfg.train.epochs = 180;
  cfg.train.learning_rate = 2e-3;
  cfg.train.lr_decay = 0.5;
  cfg.train.decay_every = 60;
  cfg.train.patience = 30;
  return cfg;
}

struct MethodRow {
  std::string method;
  double norm_mae = 0.0;
  double query_us = 0.0;
  double size_mb = 0.0;
  bool supported = true;
};

struct Workbench {
  PreparedDataset data;
  QueryFunctionSpec spec;
  std::vector<QueryInstance> train_q, test_q;
  std::vector<double> train_a, test_a;
};

inline Workbench MakeWorkbench(PreparedDataset data, Aggregate agg,
                               WorkloadConfig wc, size_t n_train,
                               size_t n_test) {
  Workbench wb;
  wb.data = std::move(data);
  wb.spec = AxisSpec(agg, wb.data.measure_col);
  ExactEngine engine(&wb.data.normalized);
  WorkloadGenerator train_gen(wb.data.normalized.num_columns(), wc);
  wb.train_q = train_gen.GenerateMany(n_train, &engine, &wb.spec);
  wb.train_a = engine.AnswerBatch(wb.spec, wb.train_q, 8);
  wc.seed += 7919;
  WorkloadGenerator test_gen(wb.data.normalized.num_columns(), wc);
  wb.test_q = test_gen.GenerateMany(n_test, &engine, &wb.spec);
  wb.test_a = engine.AnswerBatch(wb.spec, wb.test_q, 8);
  return wb;
}

/// Measure error and mean per-query latency of an answer functor that
/// returns NaN for unanswerable queries.
template <typename AnswerFn>
inline MethodRow Measure(const std::string& method, const Workbench& wb,
                         AnswerFn&& answer, double size_bytes) {
  MethodRow row;
  row.method = method;
  row.size_mb = size_bytes / (1024.0 * 1024.0);
  std::vector<double> truth, pred;
  Timer timer;
  std::vector<double> raw(wb.test_q.size());
  for (size_t i = 0; i < wb.test_q.size(); ++i) raw[i] = answer(wb.test_q[i]);
  row.query_us = timer.ElapsedMicros() / static_cast<double>(wb.test_q.size());
  for (size_t i = 0; i < wb.test_q.size(); ++i) {
    if (std::isnan(wb.test_a[i]) || std::isnan(raw[i])) continue;
    truth.push_back(wb.test_a[i]);
    pred.push_back(raw[i]);
  }
  row.norm_mae = stats::NormalizedMae(truth, pred);
  return row;
}

inline MethodRow Unsupported(const std::string& method) {
  MethodRow row;
  row.method = method;
  row.supported = false;
  return row;
}

struct CompareOptions {
  bool run_neurosketch = true;
  bool run_tree_agg = true;
  bool run_verdict = true;
  bool run_spn = true;
  bool run_dbest = true;
  /// TREE-AGG / Verdict sample count. The paper sets sampling baselines'
  /// sample sizes "so that the error is similar to that of DeepDB"
  /// (Sec. 5.1); ~1500 of ~20k rows lands in that regime here.
  size_t sample_size = 1500;
  NeuroSketchConfig sketch = DefaultSketchConfig();
};

/// Build every method on the workbench's data and measure it on the test
/// queries: one row per method (Fig. 6/7/8/9 core loop).
inline std::vector<MethodRow> CompareMethods(const Workbench& wb,
                                             const CompareOptions& opt = {}) {
  std::vector<MethodRow> rows;
  const Table& table = wb.data.normalized;
  const size_t sample = std::min(opt.sample_size, table.num_rows());

  if (opt.run_neurosketch) {
    auto sketch = NeuroSketch::Train(wb.train_q, wb.train_a, opt.sketch);
    if (sketch.ok()) {
      rows.push_back(Measure(
          "NeuroSketch", wb,
          [&](const QueryInstance& q) { return sketch.value().Answer(q); },
          static_cast<double>(sketch.value().SizeBytes())));
    } else {
      rows.push_back(Unsupported("NeuroSketch"));
    }
  }
  if (opt.run_tree_agg) {
    TreeAggConfig cfg;
    cfg.sample_size = sample;
    TreeAgg agg = TreeAgg::Build(table, cfg);
    rows.push_back(Measure(
        "TREE-AGG", wb,
        [&](const QueryInstance& q) { return agg.Answer(wb.spec, q); },
        static_cast<double>(agg.SizeBytes())));
  }
  if (opt.run_verdict) {
    if (Verdict::Supports(wb.spec.agg)) {
      VerdictConfig cfg;
      cfg.sample_size = sample;
      Verdict v = Verdict::Build(table, cfg);
      rows.push_back(Measure(
          "VerdictDB", wb,
          [&](const QueryInstance& q) {
            auto r = v.Answer(wb.spec, q);
            return r.ok() ? r.value() : std::nan("");
          },
          static_cast<double>(v.SizeBytes())));
    } else {
      rows.push_back(Unsupported("VerdictDB"));
    }
  }
  if (opt.run_spn) {
    if (Spn::Supports(wb.spec.agg)) {
      Spn spn = Spn::Build(table, {});
      rows.push_back(Measure(
          "DeepDB", wb,
          [&](const QueryInstance& q) {
            auto r = spn.Answer(wb.spec, q);
            return r.ok() ? r.value() : std::nan("");
          },
          static_cast<double>(spn.SizeBytes())));
    } else {
      rows.push_back(Unsupported("DeepDB"));
    }
  }
  if (opt.run_dbest) {
    // DBEst supports exactly one active attribute per query; build one
    // model per candidate column only for single-active workloads. For
    // simplicity the bench builds a model on the first non-measure column
    // and answers what it can — matching the paper's per-query-function
    // model granularity.
    bool multi_active = false;
    const size_t dim = table.num_columns();
    for (const auto& q : wb.test_q) {
      size_t active = 0;
      for (size_t i = 0; i < dim; ++i) {
        if (!(q[i] == 0.0 && q[dim + i] >= 1.0)) ++active;
      }
      if (active > 1) {
        multi_active = true;
        break;
      }
    }
    if (multi_active || !Dbest::Supports(wb.spec.agg)) {
      rows.push_back(Unsupported("DBEst"));
    } else {
      // One model per predicate column, as DBEst builds per-query-template
      // models; size/time are summed/averaged over models actually used.
      std::vector<std::optional<Dbest>> models(dim);
      double total_size = 0.0;
      for (size_t c = 0; c < dim; ++c) {
        auto m = Dbest::Build(table, c, wb.spec.measure_col, {});
        if (m.ok()) {
          total_size += static_cast<double>(m.value().SizeBytes());
          models[c] = std::move(m).value();
        }
      }
      rows.push_back(Measure(
          "DBEst", wb,
          [&](const QueryInstance& q) {
            for (size_t i = 0; i < dim; ++i) {
              if (!(q[i] == 0.0 && q[dim + i] >= 1.0)) {
                if (!models[i]) return std::nan("");
                auto r = models[i]->Answer(wb.spec, q);
                return r.ok() ? r.value() : std::nan("");
              }
            }
            return std::nan("");
          },
          total_size));
    }
  }
  return rows;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRows(const std::string& context,
                      const std::vector<MethodRow>& rows) {
  std::printf("%-28s %-12s %12s %14s %12s\n", context.c_str(), "method",
              "norm_MAE", "query_time_us", "size_MB");
  for (const auto& row : rows) {
    if (!row.supported) {
      std::printf("%-28s %-12s %12s %14s %12s\n", "", row.method.c_str(),
                  "N/A", "N/A", "N/A");
      continue;
    }
    std::printf("%-28s %-12s %12.4f %14.2f %12.4f\n", "", row.method.c_str(),
                row.norm_mae, row.query_us, row.size_mb);
  }
}

}  // namespace bench
}  // namespace neurosketch

#endif  // NEUROSKETCH_BENCH_BENCH_COMMON_H_
