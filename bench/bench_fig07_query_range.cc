// Fig. 7: impact of query range on error and query time (TPC1, AVG).
// Range fixed to x% of the domain for x in {1, 3, 5, 10}.
//
// Expected shape (paper): NeuroSketch error increases as ranges shrink
// (sampling error dominates, Lemma 3.6) while it stays orders of magnitude
// faster at all ranges; baselines' error also grows for small ranges.
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Figure 7: varying query range (TPC1, AVG)");
  for (double frac : {0.01, 0.03, 0.05, 0.10}) {
    PreparedDataset data = Prepare("TPC1");
    WorkloadConfig wc = DefaultWorkload("TPC1", 200);
    wc.range_frac_lo = wc.range_frac_hi = frac;
    wc.min_matches = 1;
    Workbench wb = MakeWorkbench(std::move(data), Aggregate::kAvg, wc, 2400,
                                 200);
    CompareOptions opt;
    opt.run_dbest = false;  // paper drops DBEst from the TPC1 experiments
    auto rows = CompareMethods(wb, opt);
    char ctx[64];
    std::snprintf(ctx, sizeof(ctx), "range=%.0f%%", frac * 100);
    PrintRows(ctx, rows);
  }
  std::printf(
      "\nShape check vs paper: NeuroSketch's norm_MAE should decrease as\n"
      "the range grows, and beat baselines for ranges >= 3%%.\n");
  return 0;
}
