// Fig. 12: generalization study. (a) error vs training-set size for two
// widths (30, 120); (b) mean Euclidean distance from test queries to their
// nearest training query (dist. NTQ) vs training-set size.
//
// Expected shape (paper): error saturates once enough training queries are
// seen; dist-NTQ keeps decreasing, showing the residual error is model
// capacity, not training data.
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

namespace {

double DistNtq(const std::vector<QueryInstance>& train,
               const std::vector<QueryInstance>& test) {
  double acc = 0.0;
  for (const auto& t : test) {
    double best = 1e300;
    for (const auto& s : train) {
      double d2 = 0.0;
      for (size_t i = 0; i < t.dim(); ++i) {
        const double d = t[i] - s[i];
        d2 += d * d;
      }
      best = std::min(best, d2);
    }
    acc += std::sqrt(best);
  }
  return acc / static_cast<double>(test.size());
}

}  // namespace

int main() {
  PrintHeader("Figure 12: generalization (training size sweep)");
  std::printf("%-8s %10s %8s %12s %12s %12s\n", "dataset", "train_n", "width",
              "norm_MAE", "dist_NTQ", "train_s");
  for (const char* name : {"VS", "PM", "TPC1"}) {
    PreparedDataset data = Prepare(name);
    ExactEngine engine(&data.normalized);
    QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, data.measure_col);
    WorkloadConfig wc = DefaultWorkload(name, 800);
    WorkloadGenerator test_gen(data.normalized.num_columns(),
                               [&] {
                                 auto w = wc;
                                 w.seed += 13;
                                 return w;
                               }());
    auto test_q = test_gen.GenerateMany(150, &engine, &spec);
    auto test_a = engine.AnswerBatch(spec, test_q, 8);

    for (size_t train_n : {250u, 1000u, 4000u}) {
      WorkloadGenerator train_gen(data.normalized.num_columns(), wc);
      auto train_q = train_gen.GenerateMany(train_n, &engine, &spec);
      auto train_a = engine.AnswerBatch(spec, train_q, 8);
      const double ntq = DistNtq(train_q, test_q);
      for (size_t width : {30u, 120u}) {
        NeuroSketchConfig cfg = DefaultSketchConfig();
        cfg.tree_height = 0;  // no partitioning, as in the paper's Fig. 12
        cfg.target_partitions = 1;
        cfg.l_first = width;
        cfg.l_rest = width;
        Timer timer;
        auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
        const double secs = timer.ElapsedSeconds();
        if (!sketch.ok()) continue;
        std::vector<double> truth, pred;
        for (size_t i = 0; i < test_q.size(); ++i) {
          if (std::isnan(test_a[i])) continue;
          truth.push_back(test_a[i]);
          pred.push_back(sketch.value().Answer(test_q[i]));
        }
        std::printf("%-8s %10zu %8zu %12.4f %12.4f %12.2f\n", name, train_n,
                    width, stats::NormalizedMae(truth, pred), ntq, secs);
      }
    }
  }
  std::printf(
      "\nShape checks vs paper: norm_MAE saturates with train_n while\n"
      "dist_NTQ keeps shrinking; the small width saturates at a higher\n"
      "error (capacity limit).\n");
  return 0;
}
