// Fig. 8: impact of the number of active attributes (TPC1, AVG),
// r in {1, 2, 3}.
//
// Expected shape (paper): all methods lose accuracy as more attributes
// become active (fewer matching rows, like smaller ranges); NeuroSketch
// stays fastest and most accurate.
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Figure 8: varying number of active attributes (TPC1, AVG)");
  for (size_t active : {1u, 2u, 3u}) {
    PreparedDataset data = Prepare("TPC1");
    WorkloadConfig wc = DefaultWorkload("TPC1", 300);
    wc.num_active = active;
    wc.range_frac_lo = 0.1;
    wc.range_frac_hi = 0.5;
    Workbench wb = MakeWorkbench(std::move(data), Aggregate::kAvg, wc, 2400,
                                 200);
    CompareOptions opt;
    auto rows = CompareMethods(wb, opt);
    PrintRows("active_attrs=" + std::to_string(active), rows);
  }
  std::printf(
      "\nShape check vs paper: error grows with active attributes for all\n"
      "methods; DBEst is N/A beyond 1 active attribute.\n");
  return 0;
}
