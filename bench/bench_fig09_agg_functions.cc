// Fig. 9: impact of the aggregation function (TPC1): AVG, SUM, STD.
//
// Expected shape (paper): NeuroSketch answers all three; VerdictDB and
// DeepDB report N/A for STD.
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Figure 9: varying aggregation function (TPC1)");
  for (Aggregate agg : {Aggregate::kAvg, Aggregate::kSum, Aggregate::kStd}) {
    PreparedDataset data = Prepare("TPC1");
    WorkloadConfig wc = DefaultWorkload("TPC1", 400);
    Workbench wb = MakeWorkbench(std::move(data), agg, wc, 2400, 200);
    CompareOptions opt;
    opt.run_dbest = false;
    auto rows = CompareMethods(wb, opt);
    PrintRows(AggregateName(agg), rows);
  }
  std::printf(
      "\nShape check vs paper: NeuroSketch outperforms across aggregation\n"
      "functions; VerdictDB/DeepDB cannot answer STD (N/A rows).\n");
  return 0;
}
