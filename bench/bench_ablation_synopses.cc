// Ablation: NeuroSketch vs the classical grid-histogram synopsis across
// data dimensionality (the pre-ML related-work family [14]). Histograms
// are excellent in low dimensions but their cell count — and therefore
// storage — grows as bins^d, while NeuroSketch's size is bound by its
// architecture.
//
// Expected shape: at d=2 the histogram matches or beats NeuroSketch; by
// d >= 5 the histogram needs orders of magnitude more space for the same
// accuracy (or becomes infeasible), while the sketch's size stays flat.
#include "baselines/histogram.h"
#include "bench_common.h"

using namespace neurosketch;
using namespace neurosketch::bench;

int main() {
  PrintHeader("Ablation: grid-histogram synopsis vs NeuroSketch by dim");
  std::printf("%-6s %-22s %12s %14s %12s\n", "dim", "method", "norm_MAE",
              "query_time_us", "size_MB");
  for (size_t dim : {2u, 3u, 5u, 8u}) {
    Dataset ds = MakeGmmDataset(20000, dim, 20, 1800 + dim);
    Normalizer norm = Normalizer::Fit(ds.table);
    PreparedDataset data;
    data.name = ds.name;
    data.measure_col = ds.measure_col;
    data.normalized = norm.Transform(ds.table);
    WorkloadConfig wc;
    wc.num_active = 1;
    wc.range_frac_lo = 0.05;
    wc.range_frac_hi = 0.5;
    wc.min_matches = 5;
    wc.seed = 1900 + dim;
    Workbench wb =
        MakeWorkbench(std::move(data), Aggregate::kAvg, wc, 1200, 200);

    // NeuroSketch.
    auto sketch =
        NeuroSketch::Train(wb.train_q, wb.train_a, DefaultSketchConfig());
    if (sketch.ok()) {
      auto row = Measure(
          "NeuroSketch", wb,
          [&](const QueryInstance& q) { return sketch.value().Answer(q); },
          static_cast<double>(sketch.value().SizeBytes()));
      std::printf("%-6zu %-22s %12.4f %14.2f %12.4f\n", dim,
                  row.method.c_str(), row.norm_mae, row.query_us,
                  row.size_mb);
    }
    // Histogram at two resolutions.
    for (size_t bins : {8u, 16u}) {
      GridHistogramConfig hc;
      hc.bins_per_dim = bins;
      auto hist =
          GridHistogram::Build(wb.data.normalized, wb.spec.measure_col, hc);
      char label[32];
      std::snprintf(label, sizeof(label), "Histogram(%zu bins)", bins);
      if (!hist.ok()) {
        std::printf("%-6zu %-22s %12s %14s %12s  (%s)\n", dim, label, "N/A",
                    "N/A", "N/A", hist.status().ToString().c_str());
        continue;
      }
      auto row = Measure(
          label, wb,
          [&](const QueryInstance& q) {
            auto r = hist.value().Answer(wb.spec, q);
            return r.ok() ? r.value() : std::nan("");
          },
          static_cast<double>(hist.value().SizeBytes()));
      std::printf("%-6zu %-22s %12.4f %14.2f %12.4f\n", dim,
                  row.method.c_str(), row.norm_mae, row.query_us,
                  row.size_mb);
    }
  }
  std::printf(
      "\nShape checks: histogram size grows ~bins^(d-1) and becomes\n"
      "infeasible at high d, while NeuroSketch's size stays ~flat.\n");
  return 0;
}
